//! NPB **BT** — Block Tri-diagonal pseudo-application.
//!
//! BT solves the 3-D Navier–Stokes equations with an ADI scheme: each
//! timestep assembles a right-hand side and then solves independent block
//! tri-diagonal systems along lines of the x, y and z dimensions. The loops
//! are balanced and cache-friendly; its per-node working set fits the
//! aggregate L3 when placement is stable. The paper finds BT gains +16.9%
//! from hierarchical locality alone — the thread count stays at 64
//! (Figure 3) and moldability contributes nothing (Figure 4).
//!
//! Native kernel: scalar tri-diagonal line solves (Thomas algorithm) along
//! the three axes of an `n³` grid plus an RHS stencil pass, each sweep a
//! taskloop over its independent lines.

use crate::ptr::SyncSlice;
use crate::spec::{blocked_tasks, Scale, SimApp, SimSite};
use ilan::driver::run_native_invocation;
use ilan::{Policy, RunStats, SiteRegistry};
use ilan_numasim::Locality;
use ilan_runtime::ThreadPool;
use ilan_topology::Topology;

/// Simulator profile (see module docs).
pub fn sim_app(topology: &Topology, scale: Scale) -> SimApp {
    let chunks = scale.chunks(256);
    let sweep = |name: &'static str| SimSite {
        name,
        tasks: blocked_tasks(
            topology,
            chunks,
            240_000.0,
            1_600_000.0,
            Locality::Chunked,
            0.28,
            true,
            |_| 1.0,
        ),
    };
    let rhs = SimSite {
        name: "bt/rhs",
        tasks: blocked_tasks(
            topology,
            chunks,
            180_000.0,
            1_400_000.0,
            Locality::Chunked,
            0.28,
            true,
            |_| 1.0,
        ),
    };
    SimApp {
        name: "BT",
        sites: vec![
            rhs,
            sweep("bt/x-solve"),
            sweep("bt/y-solve"),
            sweep("bt/z-solve"),
        ],
        schedule: vec![0, 1, 2, 3],
        steps: scale.steps(160),
        serial_ns: 350_000.0,
    }
}

/// Solves one tri-diagonal system `(a, b, c)·u = d` in place via the Thomas
/// algorithm. `a` is the sub-diagonal coefficient, `b` the diagonal, `c` the
/// super-diagonal (all constant, diagonally dominant). `d` holds the RHS on
/// entry and the solution on exit; `scratch` must be at least `d.len()` long.
pub fn thomas_solve(a: f64, b: f64, c: f64, d: &mut [f64], scratch: &mut [f64]) {
    let n = d.len();
    assert!(n > 0, "empty system");
    assert!(scratch.len() >= n, "scratch too small");
    assert!(
        b.abs() > a.abs() + c.abs(),
        "matrix must be diagonally dominant"
    );
    // Forward elimination.
    scratch[0] = c / b;
    d[0] /= b;
    for i in 1..n {
        let m = 1.0 / (b - a * scratch[i - 1]);
        scratch[i] = c * m;
        d[i] = (d[i] - a * d[i - 1]) * m;
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        d[i] -= scratch[i] * d[i + 1];
    }
}

/// A cubic scalar field with ADI-style sweeps.
pub struct BtGrid {
    /// Side length.
    pub n: usize,
    /// Field values, index `x + n·(y + n·z)`.
    pub u: Vec<f64>,
}

/// Tri-diagonal coefficients used by the sweeps (diagonally dominant).
pub const BT_COEFFS: (f64, f64, f64) = (-1.0, 4.2, -1.0);

impl BtGrid {
    /// A deterministic smooth initial field.
    pub fn new(n: usize) -> BtGrid {
        let u = (0..n * n * n)
            .map(|i| {
                let x = (i % n) as f64;
                let y = ((i / n) % n) as f64;
                let z = (i / (n * n)) as f64;
                1.0 + (0.11 * x).sin() * (0.07 * y).cos() + 0.03 * z
            })
            .collect();
        BtGrid { n, u }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.n * (y + self.n * z)
    }

    /// Serial reference for one full timestep (RHS + three sweeps).
    pub fn step_serial(&mut self) {
        self.rhs_serial();
        for axis in 0..3 {
            self.sweep_serial(axis);
        }
    }

    fn rhs_serial(&mut self) {
        let n = self.n;
        let mut out = self.u.clone();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    out[self.idx(x, y, z)] = rhs_point(&self.u, n, x, y, z);
                }
            }
        }
        self.u = out;
    }

    fn sweep_serial(&mut self, axis: usize) {
        let n = self.n;
        let mut line = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        for j in 0..n {
            for k in 0..n {
                for (i, slot) in line.iter_mut().enumerate() {
                    *slot = self.u[line_index(n, axis, i, j, k)];
                }
                let (a, b, c) = BT_COEFFS;
                thomas_solve(a, b, c, &mut line, &mut scratch);
                for (i, &v) in line.iter().enumerate() {
                    self.u[line_index(n, axis, i, j, k)] = v;
                }
            }
        }
    }
}

/// Index of point `i` along `axis`, at transverse coordinates `(j, k)` in
/// an `n³` row-major field. Shared with the SP kernel.
#[inline]
pub fn line_index(n: usize, axis: usize, i: usize, j: usize, k: usize) -> usize {
    match axis {
        0 => i + n * (j + n * k),
        1 => j + n * (i + n * k),
        2 => j + n * (k + n * i),
        _ => unreachable!("axis must be 0..3"),
    }
}

/// Seven-point stencil RHS evaluation at one grid point (clamped edges).
#[inline]
fn rhs_point(u: &[f64], n: usize, x: usize, y: usize, z: usize) -> f64 {
    let at = |x: usize, y: usize, z: usize| u[x + n * (y + n * z)];
    let xm = at(x.saturating_sub(1), y, z);
    let xp = at((x + 1).min(n - 1), y, z);
    let ym = at(x, y.saturating_sub(1), z);
    let yp = at(x, (y + 1).min(n - 1), z);
    let zm = at(x, y, z.saturating_sub(1));
    let zp = at(x, y, (z + 1).min(n - 1));
    let c = at(x, y, z);
    c + 0.05 * (xm + xp + ym + yp + zm + zp - 6.0 * c)
}

/// One native BT timestep: an RHS taskloop over z-planes, then tri-diagonal
/// sweeps along x, y and z, each a taskloop over its `n²` independent lines.
pub fn step_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    grid: &mut BtGrid,
    sites: &mut SiteRegistry,
    stats: &mut RunStats,
) {
    let n = grid.n;
    let s_rhs = sites.site("bt/rhs");
    let s_sweep = [
        sites.site("bt/x-solve"),
        sites.site("bt/y-solve"),
        sites.site("bt/z-solve"),
    ];

    // RHS pass: each chunk owns whole z-planes; reads the old field, writes
    // a fresh one.
    {
        let old = grid.u.clone();
        let out = SyncSlice::new(&mut grid.u);
        let grain = (n / 8).max(1);
        let (_, rep) = run_native_invocation(pool, policy, s_rhs, 0..n, grain, |zs| {
            for z in zs {
                for y in 0..n {
                    for x in 0..n {
                        // SAFETY: z-planes are disjoint between chunks.
                        unsafe {
                            out.write(x + n * (y + n * z), rhs_point(&old, n, x, y, z));
                        }
                    }
                }
            }
        });
        stats.add(&rep);
    }

    // Line sweeps: n² independent lines per axis.
    for (axis, &site) in s_sweep.iter().enumerate() {
        let lines = n * n;
        let grain = (lines / 64).max(1);
        let field = SyncSlice::new(&mut grid.u);
        let (_, rep) = run_native_invocation(pool, policy, site, 0..lines, grain, |range| {
            let mut line = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            for l in range {
                let (j, k) = (l % n, l / n);
                for (i, slot) in line.iter_mut().enumerate() {
                    // SAFETY: each line's points belong to exactly one l.
                    unsafe { *slot = field.read(line_index(n, axis, i, j, k)) };
                }
                let (a, b, c) = BT_COEFFS;
                thomas_solve(a, b, c, &mut line, &mut scratch);
                for (i, &v) in line.iter().enumerate() {
                    // SAFETY: as above — lines are disjoint.
                    unsafe { field.write(line_index(n, axis, i, j, k), v) };
                }
            }
        });
        stats.add(&rep);
    }
}

/// The five-variable flow field of the true BT formulation: each grid point
/// carries `(ρ, ρu, ρv, ρw, E)` and the line solves eliminate 5×5 blocks.
pub struct BtBlockField {
    /// Side length.
    pub n: usize,
    /// Per-point 5-vectors, index `x + n·(y + n·z)`.
    pub u: Vec<crate::block::Vec5>,
    /// Sub-diagonal block.
    pub a: crate::block::Block5,
    /// Main-diagonal block.
    pub b: crate::block::Block5,
    /// Super-diagonal block.
    pub c: crate::block::Block5,
}

impl BtBlockField {
    /// Deterministic initial field with BT-like diagonally dominant blocks.
    pub fn new(n: usize) -> BtBlockField {
        use crate::block::Block5;
        let u = (0..n * n * n)
            .map(|i| {
                let mut v = [0.0; 5];
                for (k, slot) in v.iter_mut().enumerate() {
                    *slot = 1.0 + ((i * 5 + k) as f64 * 0.211).sin() * 0.3;
                }
                v
            })
            .collect();
        let a = Block5::dominant(0xB7A, 0.15);
        let mut b = Block5::dominant(0xB7B, 0.25);
        for i in 0..5 {
            b.0[i][i] += 3.5; // block-level dominance over a + c
        }
        let c = Block5::dominant(0xB7C, 0.15);
        BtBlockField { n, u, a, b, c }
    }

    /// Serial reference: block-Thomas along every line of `axis`.
    pub fn sweep_serial(&mut self, axis: usize) {
        let n = self.n;
        let mut line: Vec<crate::block::Vec5> = vec![[0.0; 5]; n];
        for l in 0..n * n {
            let (j, k) = (l % n, l / n);
            for (i, slot) in line.iter_mut().enumerate() {
                *slot = self.u[line_index(n, axis, i, j, k)];
            }
            crate::block::block_thomas_solve(&self.a, &self.b, &self.c, &mut line);
            for (i, &v) in line.iter().enumerate() {
                self.u[line_index(n, axis, i, j, k)] = v;
            }
        }
    }
}

/// One native block sweep along `axis`: a taskloop over the `n²` independent
/// block tri-diagonal systems.
pub fn block_sweep_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    field: &mut BtBlockField,
    sites: &mut SiteRegistry,
    axis: usize,
    stats: &mut RunStats,
) {
    let n = field.n;
    let site = sites.site(match axis {
        0 => "bt/block-x-solve",
        1 => "bt/block-y-solve",
        _ => "bt/block-z-solve",
    });
    let lines = n * n;
    let grain = (lines / 64).max(1);
    let (a, b, c) = (field.a, field.b, field.c);
    let u = SyncSlice::new(&mut field.u);
    let (_, rep) = run_native_invocation(pool, policy, site, 0..lines, grain, |range| {
        let mut line: Vec<crate::block::Vec5> = vec![[0.0; 5]; n];
        for l in range {
            let (j, k) = (l % n, l / n);
            for (i, slot) in line.iter_mut().enumerate() {
                // SAFETY: lines are disjoint between chunks.
                unsafe { *slot = u.read(line_index(n, axis, i, j, k)) };
            }
            crate::block::block_thomas_solve(&a, &b, &c, &mut line);
            for (i, &v) in line.iter().enumerate() {
                // SAFETY: lines are disjoint between chunks.
                unsafe { u.write(line_index(n, axis, i, j, k), v) };
            }
        }
    });
    stats.add(&rep);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{all_finite, max_abs_diff};
    use ilan::BaselinePolicy;
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::presets;

    #[test]
    fn thomas_matches_dense_solve() {
        // Solve (a,b,c)·u = d for a known u, reconstruct d, then solve.
        let n = 10;
        let (a, b, c) = BT_COEFFS;
        let expected: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.1).sin() + 1.0).collect();
        let mut d = vec![0.0; n];
        for i in 0..n {
            d[i] = b * expected[i];
            if i > 0 {
                d[i] += a * expected[i - 1];
            }
            if i + 1 < n {
                d[i] += c * expected[i + 1];
            }
        }
        let mut scratch = vec![0.0; n];
        thomas_solve(a, b, c, &mut d, &mut scratch);
        assert!(max_abs_diff(&d, &expected) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "diagonally dominant")]
    fn thomas_rejects_non_dominant() {
        let mut d = vec![1.0; 4];
        let mut s = vec![0.0; 4];
        thomas_solve(-1.0, 1.5, -1.0, &mut d, &mut s);
    }

    #[test]
    fn line_idx_covers_each_axis() {
        let n = 4;
        for axis in 0..3 {
            let mut seen = vec![false; n * n * n];
            for j in 0..n {
                for k in 0..n {
                    for i in 0..n {
                        let idx = line_index(n, axis, i, j, k);
                        assert!(!seen[idx], "axis {axis} repeats index {idx}");
                        seen[idx] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "axis {axis} misses points");
        }
    }

    #[test]
    fn native_step_matches_serial() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let n = 12;
        let mut parallel = BtGrid::new(n);
        let mut serial = BtGrid::new(n);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;
        for _ in 0..3 {
            step_native(&pool, &mut policy, &mut parallel, &mut sites, &mut stats);
            serial.step_serial();
        }
        assert!(
            max_abs_diff(&parallel.u, &serial.u) < 1e-12,
            "parallel sweep diverged from serial"
        );
        assert!(all_finite(&parallel.u));
        assert_eq!(stats.invocations, 12); // 4 loops × 3 steps
    }

    #[test]
    fn block_sweep_matches_serial_on_all_axes() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let n = 8;
        let mut parallel = BtBlockField::new(n);
        let mut serial = BtBlockField::new(n);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;
        for axis in 0..3 {
            block_sweep_native(
                &pool,
                &mut policy,
                &mut parallel,
                &mut sites,
                axis,
                &mut stats,
            );
            serial.sweep_serial(axis);
        }
        let flat_p: Vec<f64> = parallel.u.iter().flatten().copied().collect();
        let flat_s: Vec<f64> = serial.u.iter().flatten().copied().collect();
        assert!(max_abs_diff(&flat_p, &flat_s) < 1e-12);
        assert!(all_finite(&flat_p));
        assert_eq!(stats.invocations, 3);
    }

    #[test]
    fn sim_profile_fits_l3_and_nearly_balanced() {
        let topo = presets::epyc_9354_2s();
        let app = sim_app(&topo, Scale::Quick);
        assert_eq!(app.schedule.len(), 4);
        for site in &app.sites {
            assert!(site.tasks.iter().all(|t| t.fits_l3));
            assert!(site.tasks.iter().all(|t| t.cache_reuse >= 0.28));
        }
    }
}
