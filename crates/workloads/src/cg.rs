//! NPB **CG** — Conjugate Gradient.
//!
//! The NPB CG kernel solves a sparse symmetric system with unpreconditioned
//! conjugate gradient; its dominant loop is the sparse matrix–vector product
//! over a randomly structured matrix, which makes it the paper's showcase
//! for *interference*: irregular gathers saturate the memory system well
//! below 64 cores, so ILAN molds it down (to ~25 cores on average, Figure 3)
//! for an 8% gain, while the no-moldability ablation *loses* 8.6%
//! (Figure 4). Its row lengths also vary, so static work-sharing loses badly
//! (Figure 6).
//!
//! Native kernel: CG over a CSR matrix (2-D five-point Poisson stencil plus
//! random long-range couplings to mimic NPB's irregular sparsity), with
//! `spmv`, `axpy` and `dot` taskloop sites.

use crate::ptr::SyncSlice;
use crate::spec::{blocked_tasks, jitter_weight, Scale, SimApp, SimSite};
use ilan::driver::run_native_invocation;
use ilan::{Policy, RunStats, SiteRegistry};
use ilan_numasim::Locality;
use ilan_runtime::ThreadPool;
use ilan_topology::Topology;
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulator profile (see module docs for the calibration rationale).
pub fn sim_app(topology: &Topology, scale: Scale) -> SimApp {
    let chunks = scale.chunks(256);
    // spmv: random gather over the whole matrix (spread ≈ 1: placement
    // cannot buy locality), working set far beyond L3, and enough aggregate
    // bandwidth demand (util ≈ 1.7 at 64 cores) that the overload region
    // makes a reduced core count competitive — the moldability target.
    // Row lengths vary ±55% (NPB CG's random sparsity).
    let spmv = SimSite {
        name: "cg/spmv",
        tasks: blocked_tasks(
            topology,
            chunks,
            45_000.0,
            3_500_000.0,
            Locality::Scattered { spread: 1.0 },
            0.02,
            false,
            |i| {
                // Fine random row-length jitter plus a slow wave: some row
                // blocks of the random matrix are denser than others, so
                // node-granular static placement inherits a systematic
                // imbalance that only stealing can correct.
                let wave = 1.0 + 0.30 * (i as f64 * std::f64::consts::TAU / 256.0).sin();
                jitter_weight(i, 0xC6, 0.55) * wave
            },
        ),
    };
    // Vector updates: the p/q vectors are consumed through the gather in the
    // next spmv, so their effective access pattern is half streaming, half
    // irregular.
    let vecops = SimSite {
        name: "cg/vecops",
        tasks: blocked_tasks(
            topology,
            chunks / 2,
            20_000.0,
            1_300_000.0,
            Locality::Scattered { spread: 0.75 },
            0.05,
            false,
            |i| jitter_weight(i, 0xC7, 0.10),
        ),
    };
    SimApp {
        name: "CG",
        sites: vec![spmv, vecops],
        schedule: vec![0, 1, 0, 1],
        steps: scale.steps(80),
        serial_ns: 300_000.0,
    }
}

/// A square sparse matrix in compressed-sparse-row form.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Row start offsets, length `n + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices, length `nnz`.
    pub col_idx: Vec<usize>,
    /// Values, length `nnz`.
    pub values: Vec<f64>,
}

impl Csr {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Serial `y = A·x`.
    pub fn spmv_serial(&self, x: &[f64], y: &mut [f64]) {
        for (row, out) in y.iter_mut().enumerate().take(self.n()) {
            let mut acc = 0.0;
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    /// Builds a symmetric positive-definite test matrix on a `side × side`
    /// grid: the five-point Laplacian plus `extra_per_row` random symmetric
    /// long-range couplings (deterministic in `seed`) that roughen row
    /// lengths the way NPB CG's random pattern does. Diagonal dominance
    /// keeps it SPD.
    pub fn poisson_irregular(side: usize, extra_per_row: usize, seed: u64) -> Csr {
        let n = side * side;
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let push_sym = |a: usize, b: usize, v: f64, cols: &mut Vec<Vec<(usize, f64)>>| {
            cols[a].push((b, v));
            cols[b].push((a, v));
        };
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                if c + 1 < side {
                    push_sym(i, i + 1, -1.0, &mut cols);
                }
                if r + 1 < side {
                    push_sym(i, i + side, -1.0, &mut cols);
                }
            }
        }
        // Random long-range couplings.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            let k = (next() as usize) % (extra_per_row + 1);
            for _ in 0..k {
                let j = (next() as usize) % n;
                if j != i {
                    push_sym(i, j, -0.05, &mut cols);
                }
            }
        }
        // Assemble with a dominant diagonal.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for (i, mut row) in cols.into_iter().enumerate() {
            row.sort_by_key(|&(j, _)| j);
            // Merge duplicate couplings.
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len() + 1);
            for (j, v) in row {
                match merged.last_mut() {
                    Some((lj, lv)) if *lj == j => *lv += v,
                    _ => merged.push((j, v)),
                }
            }
            let off_diag_sum: f64 = merged.iter().map(|&(_, v)| v.abs()).sum();
            let mut inserted = false;
            for (j, v) in merged {
                if !inserted && j > i {
                    col_idx.push(i);
                    values.push(off_diag_sum + 1.0);
                    inserted = true;
                }
                col_idx.push(j);
                values.push(v);
            }
            if !inserted {
                col_idx.push(i);
                values.push(off_diag_sum + 1.0);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Atomically accumulates `v` into the f64 stored in `cell`.
fn atomic_add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// Result of a native CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// Final residual norm `‖b − A·x‖`.
    pub residual: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Run statistics over all taskloop invocations.
    pub stats: RunStats,
}

/// Solves `A·x = b` (b = all ones) by CG on the native runtime, driving
/// every parallel loop through `policy`. Returns the final residual so
/// callers can assert convergence.
pub fn run_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    matrix: &Csr,
    iterations: usize,
) -> CgResult {
    let n = matrix.n();
    let grain = (n / 256).max(32);
    let mut sites = SiteRegistry::new();
    let s_spmv = sites.site("cg/spmv");
    let s_axpy = sites.site("cg/axpy");
    let s_dot = sites.site("cg/dot");
    let mut stats = RunStats::new();

    let b = vec![1.0f64; n];
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut q = vec![0.0f64; n];
    let mut rho: f64 = r.iter().map(|v| v * v).sum();
    let mut iters_done = 0;

    for _ in 0..iterations {
        iters_done += 1;
        // q = A·p
        {
            let q_out = SyncSlice::new(&mut q);
            let (_, rep) = run_native_invocation(pool, policy, s_spmv, 0..n, grain, |rows| {
                for row in rows {
                    let mut acc = 0.0;
                    for k in matrix.row_ptr[row]..matrix.row_ptr[row + 1] {
                        acc += matrix.values[k] * p[matrix.col_idx[k]];
                    }
                    // SAFETY: chunks partition 0..n; `row` is exclusive.
                    unsafe { q_out.write(row, acc) };
                }
            });
            stats.add(&rep);
        }
        // alpha = rho / (p·q)
        let pq = {
            let acc = AtomicU64::new(0f64.to_bits());
            let (_, rep) = run_native_invocation(pool, policy, s_dot, 0..n, grain, |range| {
                let partial: f64 = range.map(|i| p[i] * q[i]).sum();
                atomic_add_f64(&acc, partial);
            });
            stats.add(&rep);
            f64::from_bits(acc.load(Ordering::Acquire))
        };
        if pq.abs() < f64::MIN_POSITIVE {
            break;
        }
        let alpha = rho / pq;
        // x += alpha·p ; r −= alpha·q (fused update loop).
        {
            let x_out = SyncSlice::new(&mut x);
            let r_out = SyncSlice::new(&mut r);
            let (_, rep) = run_native_invocation(pool, policy, s_axpy, 0..n, grain, |range| {
                for i in range {
                    // SAFETY: chunks partition 0..n; `i` is exclusive.
                    unsafe {
                        *x_out.get_mut(i) += alpha * p[i];
                        *r_out.get_mut(i) -= alpha * q[i];
                    }
                }
            });
            stats.add(&rep);
        }
        // rho' = r·r ; p = r + (rho'/rho)·p
        let rho_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        if rho.sqrt() < 1e-10 {
            break;
        }
    }

    // Residual check against the definition.
    let mut ax = vec![0.0f64; n];
    matrix.spmv_serial(&x, &mut ax);
    let residual = b
        .iter()
        .zip(&ax)
        .map(|(bi, axi)| (bi - axi) * (bi - axi))
        .sum::<f64>()
        .sqrt();
    CgResult {
        residual,
        iterations: iters_done,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::all_finite;
    use ilan::{BaselinePolicy, IlanParams, IlanScheduler};
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::presets;

    #[test]
    fn csr_poisson_shape() {
        let a = Csr::poisson_irregular(8, 0, 1);
        assert_eq!(a.n(), 64);
        // Pure 5-point stencil: 64 diagonal + 2×(2·8·7) off-diagonal entries.
        assert_eq!(a.nnz(), 64 + 2 * 2 * 8 * 7);
    }

    #[test]
    fn csr_rows_are_sorted_and_diag_dominant() {
        let a = Csr::poisson_irregular(10, 3, 42);
        for row in 0..a.n() {
            let lo = a.row_ptr[row];
            let hi = a.row_ptr[row + 1];
            let cols = &a.col_idx[lo..hi];
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {row} unsorted");
            let diag: f64 = (lo..hi)
                .find(|&k| a.col_idx[k] == row)
                .map(|k| a.values[k])
                .expect("diagonal present");
            let off: f64 = (lo..hi)
                .filter(|&k| a.col_idx[k] != row)
                .map(|k| a.values[k].abs())
                .sum();
            assert!(diag > off, "row {row} not dominant: {diag} vs {off}");
        }
    }

    #[test]
    fn irregular_rows_have_varying_lengths() {
        let a = Csr::poisson_irregular(16, 4, 7);
        let lens: Vec<usize> = (0..a.n())
            .map(|r| a.row_ptr[r + 1] - a.row_ptr[r])
            .collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > min, "expected irregular row lengths");
    }

    #[test]
    fn native_cg_converges() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let a = Csr::poisson_irregular(24, 2, 3);
        let mut policy = BaselinePolicy;
        let res = run_native(&pool, &mut policy, &a, 200);
        assert!(
            res.residual < 1e-8,
            "CG failed to converge: residual {}",
            res.residual
        );
        assert!(res.stats.invocations > 0);
    }

    #[test]
    fn native_cg_same_answer_under_ilan() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let a = Csr::poisson_irregular(20, 2, 9);
        let mut base = BaselinePolicy;
        let r1 = run_native(&pool, &mut base, &a, 150);
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&presets::tiny_2x4()));
        let r2 = run_native(&pool, &mut ilan, &a, 150);
        assert!(r1.residual < 1e-8);
        assert!(r2.residual < 1e-8);
    }

    #[test]
    fn sim_profile_is_memory_saturating() {
        let topo = presets::epyc_9354_2s();
        let app = sim_app(&topo, Scale::Quick);
        let spmv = &app.sites[0];
        // The headline property: aggregate desired bandwidth at 64 cores far
        // exceeds the machine's 8 × 80 B/ns.
        let total_desired: f64 = spmv
            .tasks
            .iter()
            .take(64)
            .map(|t| t.mem_bytes / t.ideal_ns(22.0))
            .sum();
        // Machine bandwidth is 8 nodes × 80 B/ns = 640 B/ns; spmv demand
        // must exceed it so the overload region exists.
        assert!(
            total_desired > 1.2 * 640.0,
            "CG spmv must saturate memory: {total_desired}"
        );
        assert!(all_finite(
            &spmv.tasks.iter().map(|t| t.compute_ns).collect::<Vec<_>>()
        ));
    }

    #[test]
    fn sim_profile_is_imbalanced() {
        let topo = presets::epyc_9354_2s();
        let app = sim_app(&topo, Scale::Quick);
        let times: Vec<f64> = app.sites[0]
            .tasks
            .iter()
            .map(|t| t.ideal_ns(22.0))
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 1.5,
            "CG chunks should be imbalanced: {max}/{min}"
        );
    }
}
