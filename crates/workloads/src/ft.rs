//! NPB **FT** — 3-D Fast Fourier Transform.
//!
//! FT performs repeated FFTs with global transposes between dimensions —
//! "extensive long-distance memory communication" (paper §4.2). The loops
//! are perfectly balanced, so the paper finds: ILAN keeps all 64 cores
//! (Figure 3), gains +12.3% purely from hierarchical locality (Figure 2),
//! and is itself beaten by static work-sharing, which gets the same locality
//! with zero scheduling overhead on this imbalance-free code (Figure 6).
//!
//! Native kernel: a 2-D complex FFT (row FFTs → transpose → row FFTs),
//! pointwise spectral evolution each timestep, all loops as taskloops.

use crate::ptr::SyncSlice;
use crate::spec::{blocked_tasks, Scale, SimApp, SimSite};
use ilan::driver::run_native_invocation;
use ilan::{Policy, RunStats, SiteRegistry};
use ilan_numasim::Locality;
use ilan_runtime::ThreadPool;
use ilan_topology::Topology;

/// Simulator profile (see module docs).
pub fn sim_app(topology: &Topology, scale: Scale) -> SimApp {
    let chunks = scale.chunks(256);
    // Local FFT passes: compute-rich, streaming, cache-friendly when the
    // same rows revisit the same node every timestep. Perfectly balanced.
    let fft_pass = SimSite {
        name: "ft/fft-rows",
        tasks: blocked_tasks(
            topology,
            chunks,
            300_000.0,
            2_000_000.0,
            Locality::Chunked,
            0.30,
            true,
            |_| 1.0,
        ),
    };
    // Transpose: all-to-all traffic, latency-tolerant streaming. Balanced.
    let transpose = SimSite {
        name: "ft/transpose",
        tasks: blocked_tasks(
            topology,
            chunks,
            160_000.0,
            1_600_000.0,
            Locality::Scattered { spread: 1.0 },
            0.0,
            false,
            |_| 1.0,
        ),
    };
    // Spectral evolve: light pointwise multiply.
    let evolve = SimSite {
        name: "ft/evolve",
        tasks: blocked_tasks(
            topology,
            chunks / 2,
            60_000.0,
            1_200_000.0,
            Locality::Chunked,
            0.25,
            true,
            |_| 1.0,
        ),
    };
    SimApp {
        name: "FT",
        // evolve, FFT pass, transpose, FFT pass, transpose back.
        sites: vec![fft_pass, transpose, evolve],
        schedule: vec![2, 0, 1, 0, 1],
        steps: scale.steps(200),
        serial_ns: 250_000.0,
    }
}

/// In-place radix-2 Cooley–Tukey FFT of one row (`re`/`im` of length `n`,
/// `n` a power of two). `inverse` selects the inverse transform (without
/// the 1/n normalisation — callers normalise).
pub fn fft_row(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// A square complex field of side `n` (row-major), with 2-D FFT timesteps.
pub struct FtGrid {
    /// Side length (power of two).
    pub n: usize,
    /// Real parts, row-major `n × n`.
    pub re: Vec<f64>,
    /// Imaginary parts, row-major `n × n`.
    pub im: Vec<f64>,
}

impl FtGrid {
    /// A deterministic pseudo-random initial field.
    pub fn new(n: usize) -> FtGrid {
        assert!(n.is_power_of_two(), "side must be a power of two");
        let mut state = 0x243F6A8885A308D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let re = (0..n * n).map(|_| next()).collect();
        let im = (0..n * n).map(|_| next()).collect();
        FtGrid { n, re, im }
    }

    /// Sum of squared magnitudes (Parseval checksum).
    pub fn energy(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(r, i)| r * r + i * i)
            .sum()
    }

    /// Serial out-of-place transpose.
    pub fn transpose_serial(&mut self) {
        let n = self.n;
        for r in 0..n {
            for c in (r + 1)..n {
                self.re.swap(r * n + c, c * n + r);
                self.im.swap(r * n + c, c * n + r);
            }
        }
    }
}

/// One 2-D FFT of the grid on the native runtime (row FFTs → transpose →
/// row FFTs → transpose), each stage a taskloop through `policy`.
pub fn fft2d_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    grid: &mut FtGrid,
    sites: &mut SiteRegistry,
    inverse: bool,
    stats: &mut RunStats,
) {
    let n = grid.n;
    let grain = (n / 64).max(1);
    let s_rows = sites.site("ft/fft-rows");
    let s_tr = sites.site("ft/transpose");

    for _half in 0..2 {
        // Row FFTs.
        {
            let re = SyncSlice::new(&mut grid.re);
            let im = SyncSlice::new(&mut grid.im);
            let (_, rep) = run_native_invocation(pool, policy, s_rows, 0..n, grain, |rows| {
                let mut row_re = vec![0.0; n];
                let mut row_im = vec![0.0; n];
                for row in rows {
                    for c in 0..n {
                        // SAFETY: rows are disjoint between chunks.
                        unsafe {
                            row_re[c] = re.read(row * n + c);
                            row_im[c] = im.read(row * n + c);
                        }
                    }
                    fft_row(&mut row_re, &mut row_im, inverse);
                    for c in 0..n {
                        // SAFETY: rows are disjoint between chunks.
                        unsafe {
                            re.write(row * n + c, row_re[c]);
                            im.write(row * n + c, row_im[c]);
                        }
                    }
                }
            });
            stats.add(&rep);
        }
        // Transpose (upper-triangle swap, rows disjoint via row ownership of
        // the strict upper triangle).
        {
            let re = SyncSlice::new(&mut grid.re);
            let im = SyncSlice::new(&mut grid.im);
            let (_, rep) = run_native_invocation(pool, policy, s_tr, 0..n, grain, |rows| {
                for r in rows {
                    for c in (r + 1)..n {
                        // SAFETY: the pair (r·n+c, c·n+r) with c > r is
                        // touched only by the chunk owning row r.
                        unsafe {
                            let a = re.read(r * n + c);
                            let b = re.read(c * n + r);
                            re.write(r * n + c, b);
                            re.write(c * n + r, a);
                            let a = im.read(r * n + c);
                            let b = im.read(c * n + r);
                            im.write(r * n + c, b);
                            im.write(c * n + r, a);
                        }
                    }
                }
            });
            stats.add(&rep);
        }
    }

    if inverse {
        let scale = 1.0 / (n * n) as f64;
        for v in grid.re.iter_mut().chain(grid.im.iter_mut()) {
            *v *= scale;
        }
    }
}

/// A cubic complex field of side `n` with full 3-D FFT support — the true
/// FT formulation (the 2-D [`FtGrid`] remains as the lighter proxy).
pub struct FtCube {
    /// Side length (power of two).
    pub n: usize,
    /// Real parts, index `x + n·(y + n·z)`.
    pub re: Vec<f64>,
    /// Imaginary parts, same layout.
    pub im: Vec<f64>,
}

impl FtCube {
    /// Deterministic pseudo-random initial field.
    pub fn new(n: usize) -> FtCube {
        assert!(n.is_power_of_two(), "side must be a power of two");
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let re = (0..n * n * n).map(|_| next()).collect();
        let im = (0..n * n * n).map(|_| next()).collect();
        FtCube { n, re, im }
    }

    /// Sum of squared magnitudes (Parseval checksum).
    pub fn energy(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(r, i)| r * r + i * i)
            .sum()
    }
}

/// Full 3-D FFT of the cube on the native runtime: for each axis, a
/// taskloop over the `n²` pencils running 1-D FFTs along that axis (gather
/// → FFT → scatter, so no explicit transpose pass is needed; the strided
/// gathers are exactly FT's "long-distance communication").
pub fn fft3d_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    cube: &mut FtCube,
    sites: &mut SiteRegistry,
    inverse: bool,
    stats: &mut RunStats,
) {
    let n = cube.n;
    let site = [
        sites.site("ft/fft-x"),
        sites.site("ft/fft-y"),
        sites.site("ft/fft-z"),
    ];
    // Stride pattern of each axis in the x + n·(y + n·z) layout.
    let index = |axis: usize, i: usize, j: usize, k: usize| -> usize {
        match axis {
            0 => i + n * (j + n * k),
            1 => j + n * (i + n * k),
            _ => j + n * (k + n * i),
        }
    };

    for (axis, &axis_site) in site.iter().enumerate() {
        let pencils = n * n;
        let grain = (pencils / 64).max(1);
        let re = SyncSlice::new(&mut cube.re);
        let im = SyncSlice::new(&mut cube.im);
        let (_, rep) = run_native_invocation(pool, policy, axis_site, 0..pencils, grain, |range| {
            let mut pr = vec![0.0; n];
            let mut pi = vec![0.0; n];
            for l in range {
                let (j, k) = (l % n, l / n);
                for i in 0..n {
                    // SAFETY: pencils are disjoint between chunks.
                    unsafe {
                        pr[i] = re.read(index(axis, i, j, k));
                        pi[i] = im.read(index(axis, i, j, k));
                    }
                }
                fft_row(&mut pr, &mut pi, inverse);
                for i in 0..n {
                    // SAFETY: pencils are disjoint between chunks.
                    unsafe {
                        re.write(index(axis, i, j, k), pr[i]);
                        im.write(index(axis, i, j, k), pi[i]);
                    }
                }
            }
        });
        stats.add(&rep);
    }

    if inverse {
        let scale = 1.0 / (n * n * n) as f64;
        for v in cube.re.iter_mut().chain(cube.im.iter_mut()) {
            *v *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{all_finite, max_abs_diff};
    use ilan::BaselinePolicy;
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::presets;

    #[test]
    fn fft_matches_naive_dft() {
        let n = 16;
        let mut re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut im: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let (re0, im0) = (re.clone(), im.clone());
        fft_row(&mut re, &mut im, false);
        for k in 0..n {
            let (mut sr, mut si) = (0.0, 0.0);
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                sr += re0[t] * ang.cos() - im0[t] * ang.sin();
                si += re0[t] * ang.sin() + im0[t] * ang.cos();
            }
            assert!((re[k] - sr).abs() < 1e-9, "k={k}: {} vs {}", re[k], sr);
            assert!((im[k] - si).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_roundtrip_identity() {
        let n = 64;
        let mut re: Vec<f64> = (0..n).map(|i| (i as f64).sqrt().sin()).collect();
        let mut im = vec![0.0; n];
        let (re0, im0) = (re.clone(), im.clone());
        fft_row(&mut re, &mut im, false);
        fft_row(&mut re, &mut im, true);
        for v in re.iter_mut().chain(im.iter_mut()) {
            *v /= n as f64;
        }
        assert!(max_abs_diff(&re, &re0) < 1e-10);
        assert!(max_abs_diff(&im, &im0) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_row(&mut re, &mut im, false);
    }

    #[test]
    fn native_fft2d_roundtrip_and_parseval() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let mut grid = FtGrid::new(32);
        let original_re = grid.re.clone();
        let original_im = grid.im.clone();
        let spatial_energy = grid.energy();
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;

        fft2d_native(&pool, &mut policy, &mut grid, &mut sites, false, &mut stats);
        // Parseval: spectral energy = n² × spatial energy.
        let expected = spatial_energy * (grid.n * grid.n) as f64;
        assert!(
            (grid.energy() - expected).abs() / expected < 1e-10,
            "Parseval violated"
        );
        assert!(all_finite(&grid.re));

        fft2d_native(&pool, &mut policy, &mut grid, &mut sites, true, &mut stats);
        assert!(max_abs_diff(&grid.re, &original_re) < 1e-9);
        assert!(max_abs_diff(&grid.im, &original_im) < 1e-9);
        assert!(stats.invocations >= 8);
    }

    #[test]
    fn fft3d_roundtrip_and_parseval() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let mut cube = FtCube::new(8);
        let original_re = cube.re.clone();
        let original_im = cube.im.clone();
        let spatial = cube.energy();
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;

        fft3d_native(&pool, &mut policy, &mut cube, &mut sites, false, &mut stats);
        let expected = spatial * (cube.n * cube.n * cube.n) as f64;
        assert!(
            (cube.energy() - expected).abs() / expected < 1e-10,
            "Parseval violated in 3-D"
        );

        fft3d_native(&pool, &mut policy, &mut cube, &mut sites, true, &mut stats);
        assert!(max_abs_diff(&cube.re, &original_re) < 1e-10);
        assert!(max_abs_diff(&cube.im, &original_im) < 1e-10);
        assert_eq!(stats.invocations, 6); // 3 axes × 2 transforms
    }

    #[test]
    fn fft3d_single_mode_lands_in_one_bin() {
        // A pure plane wave e^{2πi(x·1)/n} transforms to a single spike.
        let n = 8;
        let mut cube = FtCube::new(n);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let phase = 2.0 * std::f64::consts::PI * x as f64 / n as f64;
                    cube.re[x + n * (y + n * z)] = phase.cos();
                    cube.im[x + n * (y + n * z)] = phase.sin();
                }
            }
        }
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;
        fft3d_native(&pool, &mut policy, &mut cube, &mut sites, false, &mut stats);
        // All energy in bin (kx, ky, kz) = (1, 0, 0).
        let spike = cube.re[1].hypot(cube.im[1]);
        assert!(
            (spike - (n * n * n) as f64).abs() < 1e-9,
            "spike magnitude {spike}"
        );
        let total = cube.energy();
        assert!(
            (total - spike * spike).abs() / total < 1e-12,
            "energy leaked out of the spike bin"
        );
    }

    #[test]
    fn transpose_serial_is_involution() {
        let mut g = FtGrid::new(8);
        let re0 = g.re.clone();
        g.transpose_serial();
        assert_ne!(g.re, re0);
        g.transpose_serial();
        assert_eq!(g.re, re0);
    }

    #[test]
    fn sim_profile_is_balanced_and_below_saturation() {
        let topo = presets::epyc_9354_2s();
        let app = sim_app(&topo, Scale::Quick);
        for site in &app.sites {
            let times: Vec<f64> = site.tasks.iter().map(|t| t.ideal_ns(22.0)).collect();
            let max = times.iter().cloned().fold(0.0, f64::max);
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                (max - min).abs() < 1e-9,
                "FT site {} must be balanced",
                site.name
            );
        }
        // The FFT pass must not saturate memory at 64 cores (FT keeps 64).
        let pass = &app.sites[0];
        let desired64: f64 = pass
            .tasks
            .iter()
            .take(64)
            .map(|t| t.mem_bytes / t.ideal_ns(22.0))
            .sum();
        assert!(desired64 < 640.0, "FT pass must not saturate: {desired64}");
    }
}
