//! Benchmark workloads for evaluating the ILAN scheduler.
//!
//! The paper evaluates seven benchmarks: five from the NAS Parallel
//! Benchmarks (CG, FT, BT, SP, LU — the C++ port of Löff et al., class D),
//! LULESH (s = 400), and a dense matrix multiplication (3500², 200
//! iterations). This crate provides each of them in two forms:
//!
//! 1. **Native kernels** — real, verified numerical kernels (CSR conjugate
//!    gradient, radix-2 FFT passes, structured-grid sweeps, an SSOR
//!    wavefront, a hydro proxy, blocked matmul) whose parallel loops run as
//!    taskloops on the native runtime via any [`Policy`](ilan::Policy).
//!    These are scaled down from class D so they run anywhere; they are the
//!    functional-correctness leg of the reproduction.
//! 2. **Simulator profiles** ([`SimApp`]) — the same applications described
//!    as sequences of taskloop invocations with per-chunk cost/locality
//!    models, executed on the simulated 64-core EPYC 9354 machine. The
//!    profiles are derived from each kernel's arithmetic intensity, footprint
//!    and balance structure, and drive the paper-figure reproduction (the
//!    real machine is not available in this environment — see DESIGN.md).
//!
//! The seven benchmarks and their scheduling-relevant characters:
//!
//! | Benchmark | Access pattern | Memory intensity | Balance | Paper behaviour |
//! |-----------|----------------|------------------|---------|-----------------|
//! | CG        | irregular gather | very high      | imbalanced | molds to ~25 cores, +8% |
//! | FT        | long-distance transpose + local passes | high | perfectly balanced | hierarchy only, +12.3%; work-sharing wins |
//! | BT        | structured, cache-resident | moderate | balanced | hierarchy only, +16.9% |
//! | SP        | structured, bandwidth-hungry | very high | mild imbalance | molds + hierarchy, +45.8% |
//! | LU        | wavefront     | moderate          | wavefront-imbalanced | hierarchy, variance ↓ |
//! | Matmul    | blocked dense | low (compute-bound) | balanced | slight regression |
//! | LULESH    | mixed hydro loops | mixed         | mild imbalance | small gain |

#![warn(missing_docs)]

pub mod block;
pub mod bt;
pub mod cg;
pub mod ft;
pub mod lu;
pub mod lulesh;
pub mod matmul;
pub mod native;
pub mod ptr;
mod spec;
pub mod verify;

pub use native::{run_native_app, NativeRunSummary, NativeScale};
pub use spec::{Scale, SimApp, SimSite, Workload, ALL_WORKLOADS};
pub mod sp;
