//! NPB **LU** — Lower-Upper Gauss–Seidel pseudo-application.
//!
//! LU applies SSOR sweeps whose data dependencies form diagonal wavefronts:
//! the parallelism available varies along the sweep (narrow at the corners,
//! wide in the middle), producing the structured imbalance that work-stealing
//! absorbs and static partitioning does not. The paper reports a solid
//! hierarchical-locality gain and one of the clearest variance reductions
//! under ILAN (Table 1: 0.0169 → 0.0045).
//!
//! Native kernel: a 2-D SSOR wavefront over an `n × n` grid — one taskloop
//! per anti-diagonal, whose length ramps 1 → n → 1. Updates within a
//! diagonal only read already-updated points from previous diagonals, so the
//! parallel sweep is bit-identical to the serial one.

use crate::ptr::SyncSlice;
use crate::spec::{blocked_tasks, Scale, SimApp, SimSite};
use ilan::driver::run_native_invocation;
use ilan::{Policy, RunStats, SiteRegistry};
use ilan_numasim::Locality;
use ilan_runtime::ThreadPool;
use ilan_topology::Topology;

/// Simulator profile (see module docs).
pub fn sim_app(topology: &Topology, scale: Scale) -> SimApp {
    let chunks = scale.chunks(256);
    // Wavefront sweeps: a sweep's diagonals ramp 1 → n → 1, so consecutive
    // chunks carry a triangular work profile. The profile repeats once per
    // NUMA-node share of the chunk range: every node sees the same total
    // work (hierarchical placement stays balanced at node level) while the
    // 64 static work-sharing slices land at different phases of the ramp —
    // exactly the imbalance work-stealing absorbs and static scheduling
    // does not.
    let period = (chunks / 8).max(2);
    let triangular = move |i: usize| {
        let x = ((i % period) as f64 + 0.5) / period as f64; // (0,1)
        0.80 + 0.4 * (1.0 - (2.0 * x - 1.0).abs()) // 0.80 … 1.20 … 0.80
    };
    let lower = SimSite {
        name: "lu/lower-sweep",
        tasks: blocked_tasks(
            topology,
            chunks,
            220_000.0,
            1_200_000.0,
            Locality::Chunked,
            0.06,
            true,
            triangular,
        ),
    };
    let upper = SimSite {
        name: "lu/upper-sweep",
        tasks: blocked_tasks(
            topology,
            chunks,
            220_000.0,
            1_200_000.0,
            Locality::Chunked,
            0.06,
            true,
            move |i| triangular(chunks - 1 - i),
        ),
    };
    let rhs = SimSite {
        name: "lu/rhs",
        tasks: blocked_tasks(
            topology,
            chunks,
            140_000.0,
            1_000_000.0,
            Locality::Chunked,
            0.06,
            true,
            |_| 1.0,
        ),
    };
    SimApp {
        name: "LU",
        sites: vec![rhs, lower, upper],
        schedule: vec![0, 1, 2],
        steps: scale.steps(180),
        serial_ns: 300_000.0,
    }
}

/// SSOR relaxation factor.
pub const LU_OMEGA: f64 = 1.2;

/// A 2-D grid relaxed by SSOR wavefront sweeps.
pub struct LuGrid {
    /// Side length.
    pub n: usize,
    /// Values, row-major.
    pub u: Vec<f64>,
    /// Fixed right-hand side.
    pub f: Vec<f64>,
}

impl LuGrid {
    /// Deterministic initial state.
    pub fn new(n: usize) -> LuGrid {
        assert!(n >= 2, "LU grid needs n ≥ 2");
        let u = (0..n * n).map(|i| ((i % 13) as f64) * 0.05).collect();
        let f = (0..n * n)
            .map(|i| 1.0 + ((i % 7) as f64 - 3.0) * 0.1)
            .collect();
        LuGrid { n, u, f }
    }

    /// Serial forward wavefront sweep (reference).
    pub fn sweep_serial(&mut self) {
        let n = self.n;
        for d in 0..(2 * n - 1) {
            let (r0, len) = diagonal_span(n, d);
            for t in 0..len {
                let (r, c) = (r0 - t, d - (r0 - t));
                self.u[r * n + c] = relax_point(&self.f, n, r, c, &self.u);
            }
        }
    }
}

/// Gauss–Seidel/SSOR update of point `(r, c)` given its west and north
/// neighbours (already updated earlier in a forward sweep).
#[inline]
pub fn relax_point(f: &[f64], n: usize, r: usize, c: usize, u: &[f64]) -> f64 {
    let west = if c > 0 { u[r * n + c - 1] } else { 0.0 };
    let north = if r > 0 { u[(r - 1) * n + c] } else { 0.0 };
    let old = u[r * n + c];
    // Contractive Gauss–Seidel target (spectral radius < 1 with ω = 1.2).
    let gs = 0.25 * (f[r * n + c] + west + north);
    old + LU_OMEGA * (gs - old)
}

/// The rows spanned by anti-diagonal `d` of an `n × n` grid: returns the
/// starting (largest) row and the diagonal's length.
#[inline]
pub fn diagonal_span(n: usize, d: usize) -> (usize, usize) {
    debug_assert!(d < 2 * n - 1);
    let r0 = d.min(n - 1);
    let c0 = d - r0; // smallest column on the diagonal
    let len = (n - c0).min(r0 + 1);
    (r0, len)
}

/// One native forward SSOR sweep: a taskloop per anti-diagonal (2n−1
/// taskloops of ramping width), all through `policy` under one site.
pub fn sweep_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    grid: &mut LuGrid,
    sites: &mut SiteRegistry,
    stats: &mut RunStats,
) {
    let n = grid.n;
    let site = sites.site("lu/wavefront");
    let f = &grid.f;
    for d in 0..(2 * n - 1) {
        let (r0, len) = diagonal_span(n, d);
        let grain = (len / 16).max(1);
        let u = SyncSlice::new(&mut grid.u);
        let (_, rep) = run_native_invocation(pool, policy, site, 0..len, grain, |ts| {
            for t in ts {
                let (r, c) = (r0 - t, d - (r0 - t));
                // SAFETY: each diagonal point belongs to exactly one t; the
                // west/north neighbours read by relax_point lie on previous
                // diagonals, finalized before this taskloop was dispatched.
                unsafe {
                    let value = relax_point(f, n, r, c, u.as_slice());
                    u.write(r * n + c, value);
                }
            }
        });
        stats.add(&rep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{all_finite, max_abs_diff};
    use ilan::BaselinePolicy;
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::presets;

    #[test]
    fn diagonal_span_covers_grid_exactly_once() {
        let n = 7;
        let mut seen = vec![false; n * n];
        for d in 0..(2 * n - 1) {
            let (r0, len) = diagonal_span(n, d);
            for t in 0..len {
                let (r, c) = (r0 - t, d - (r0 - t));
                assert!(r < n && c < n, "({r},{c}) out of grid");
                assert!(!seen[r * n + c], "({r},{c}) visited twice");
                seen[r * n + c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn diagonal_lengths_ramp() {
        let n = 5;
        let lens: Vec<usize> = (0..(2 * n - 1)).map(|d| diagonal_span(n, d).1).collect();
        assert_eq!(lens, vec![1, 2, 3, 4, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn native_sweep_matches_serial_exactly() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let n = 24;
        let mut parallel = LuGrid::new(n);
        let mut serial = LuGrid::new(n);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;
        for _ in 0..2 {
            sweep_native(&pool, &mut policy, &mut parallel, &mut sites, &mut stats);
            serial.sweep_serial();
        }
        // Wavefront parallelism preserves the serial update order exactly.
        assert_eq!(max_abs_diff(&parallel.u, &serial.u), 0.0);
        assert!(all_finite(&parallel.u));
        assert_eq!(stats.invocations as usize, 2 * (2 * n - 1));
    }

    #[test]
    fn sweep_converges_toward_fixed_point() {
        let mut g = LuGrid::new(16);
        let mut prev_delta = f64::INFINITY;
        for _ in 0..8 {
            let before = g.u.clone();
            g.sweep_serial();
            let delta = max_abs_diff(&g.u, &before);
            assert!(delta <= prev_delta + 1e-12, "SSOR diverging");
            prev_delta = delta;
        }
        assert!(prev_delta < 0.5);
    }

    #[test]
    fn sim_profile_ramps_within_each_node_share() {
        let topo = presets::epyc_9354_2s();
        let app = sim_app(&topo, Scale::Quick);
        let lower = &app.sites[1];
        let w: Vec<f64> = lower.tasks.iter().map(|t| t.compute_ns).collect();
        let period = (w.len() / 8).max(2);
        // Mid-period chunks dominate the period boundaries (the ramp).
        assert!(
            w[period / 2] > 1.3 * w[0],
            "ramp missing: {} vs {}",
            w[period / 2],
            w[0]
        );
        // Per-node totals are balanced (each node holds one full period).
        let node_sums: Vec<f64> = (0..8)
            .map(|n| w[n * period..(n + 1) * period].iter().sum())
            .collect();
        let max = node_sums.iter().cloned().fold(0.0, f64::max);
        let min = node_sums.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.01, "node sums imbalanced: {node_sums:?}");
    }
}
