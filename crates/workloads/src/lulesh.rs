//! **LULESH** — Livermore unstructured Lagrangian hydrodynamics proxy.
//!
//! LULESH models a Sedov blast on an unstructured hex mesh; its timestep is
//! a pipeline of loops with very different characters (force assembly is
//! heavy and slightly imbalanced, the nodal updates are light streaming
//! passes, the EOS is moderate with some gather). The paper uses it as the
//! "many diverse loops" workload (s = 400, 200 iterations) and finds a
//! modest ILAN gain with slightly increased variance (Table 1).
//!
//! Native kernel: a 1-D staggered-grid Lagrangian hydro code (Sod-like shock
//! tube): zone pressure/force, nodal acceleration → velocity → position,
//! zone volume/density/energy/EOS — six taskloop sites per step, mirroring
//! the LULESH loop pipeline. Mass is conserved exactly; the parallel step is
//! bit-identical to the serial reference.

use crate::ptr::SyncSlice;
use crate::spec::{blocked_tasks, jitter_weight, Scale, SimApp, SimSite};
use ilan::driver::run_native_invocation;
use ilan::{Policy, RunStats, SiteRegistry};
use ilan_numasim::Locality;
use ilan_runtime::ThreadPool;
use ilan_topology::Topology;

/// Simulator profile (see module docs).
pub fn sim_app(topology: &Topology, scale: Scale) -> SimApp {
    let chunks = scale.chunks(256);
    let force = SimSite {
        name: "lulesh/force",
        tasks: blocked_tasks(
            topology,
            chunks,
            280_000.0,
            1_400_000.0,
            Locality::Chunked,
            0.15,
            true,
            |i| jitter_weight(i, 0x11, 0.18),
        ),
    };
    let accel_vel = SimSite {
        name: "lulesh/accel-vel",
        tasks: blocked_tasks(
            topology,
            chunks / 2,
            50_000.0,
            800_000.0,
            Locality::Chunked,
            0.15,
            true,
            |_| 1.0,
        ),
    };
    let position = SimSite {
        name: "lulesh/position",
        tasks: blocked_tasks(
            topology,
            chunks / 2,
            45_000.0,
            700_000.0,
            Locality::Chunked,
            0.15,
            true,
            |_| 1.0,
        ),
    };
    let eos = SimSite {
        name: "lulesh/eos",
        tasks: blocked_tasks(
            topology,
            chunks,
            160_000.0,
            1_200_000.0,
            Locality::Scattered { spread: 0.15 },
            0.15,
            true,
            |i| jitter_weight(i, 0x12, 0.10),
        ),
    };
    SimApp {
        name: "LULESH",
        sites: vec![force, accel_vel, position, eos],
        schedule: vec![0, 1, 2, 3],
        steps: scale.steps(200),
        serial_ns: 400_000.0,
    }
}

/// State of the 1-D staggered-grid hydro problem: `n` zones, `n + 1` nodes.
pub struct HydroState {
    /// Zone count.
    pub n: usize,
    /// Node positions (length `n + 1`), strictly increasing.
    pub x: Vec<f64>,
    /// Node velocities (length `n + 1`).
    pub v: Vec<f64>,
    /// Zone masses (length `n`), fixed.
    pub mass: Vec<f64>,
    /// Zone densities (length `n`).
    pub rho: Vec<f64>,
    /// Zone specific internal energies (length `n`).
    pub e: Vec<f64>,
    /// Zone pressures (length `n`).
    pub p: Vec<f64>,
    /// Adiabatic index.
    pub gamma: f64,
}

impl HydroState {
    /// A Sod-like shock tube: high pressure/density on the left half.
    pub fn sod(n: usize) -> HydroState {
        assert!(n >= 2, "need at least two zones");
        let x: Vec<f64> = (0..=n).map(|i| i as f64 / n as f64).collect();
        let v = vec![0.0; n + 1];
        let gamma = 1.4;
        let mut rho = vec![0.125; n];
        let mut p = vec![0.1; n];
        for i in 0..n / 2 {
            rho[i] = 1.0;
            p[i] = 1.0;
        }
        let dx = 1.0 / n as f64;
        let mass: Vec<f64> = rho.iter().map(|r| r * dx).collect();
        let e: Vec<f64> = rho
            .iter()
            .zip(&p)
            .map(|(r, pp)| pp / ((gamma - 1.0) * r))
            .collect();
        HydroState {
            n,
            x,
            v,
            mass,
            rho,
            e,
            p,
            gamma,
        }
    }

    /// Total mass (exactly conserved — the mesh is Lagrangian).
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Total energy: internal + kinetic (approximately conserved).
    pub fn total_energy(&self) -> f64 {
        let internal: f64 = self.mass.iter().zip(&self.e).map(|(m, e)| m * e).sum();
        // Nodal kinetic energy with half-mass lumping from adjacent zones.
        let mut kinetic = 0.0;
        for i in 0..=self.n {
            let m = 0.5
                * (if i > 0 { self.mass[i - 1] } else { 0.0 }
                    + if i < self.n { self.mass[i] } else { 0.0 });
            kinetic += 0.5 * m * self.v[i] * self.v[i];
        }
        internal + kinetic
    }

    /// Serial reference timestep (leapfrog with artificial viscosity).
    pub fn step_serial(&mut self, dt: f64) {
        let n = self.n;
        let q = self.viscosity();
        // Nodal force = pressure jump across the node; reflective walls.
        let mut accel = vec![0.0; n + 1];
        for (i, a) in accel.iter_mut().enumerate() {
            let pl = if i > 0 {
                self.p[i - 1] + q[i - 1]
            } else {
                self.p[0] + q[0]
            };
            let pr = if i < n {
                self.p[i] + q[i]
            } else {
                self.p[n - 1] + q[n - 1]
            };
            let m = 0.5
                * (if i > 0 {
                    self.mass[i - 1]
                } else {
                    self.mass[0]
                } + if i < n {
                    self.mass[i]
                } else {
                    self.mass[n - 1]
                });
            *a = (pl - pr) / m;
        }
        for (v, a) in self.v.iter_mut().zip(&accel) {
            *v += dt * a;
        }
        // Walls stay put.
        self.v[0] = 0.0;
        self.v[n] = 0.0;
        for i in 0..=n {
            self.x[i] += dt * self.v[i];
        }
        // Zone update: volume, density, energy (pdV + viscous heating), EOS.
        #[allow(clippy::needless_range_loop)] // five arrays share the index
        for i in 0..n {
            let dx = self.x[i + 1] - self.x[i];
            let new_rho = self.mass[i] / dx;
            let dv_specific = 1.0 / new_rho - 1.0 / self.rho[i];
            self.e[i] -= (self.p[i] + q[i]) * dv_specific;
            self.e[i] = self.e[i].max(1e-12);
            self.rho[i] = new_rho;
            self.p[i] = (self.gamma - 1.0) * self.rho[i] * self.e[i];
        }
    }

    /// Von Neumann–Richtmyer artificial viscosity per zone.
    fn viscosity(&self) -> Vec<f64> {
        const C_Q: f64 = 2.0;
        (0..self.n)
            .map(|i| {
                let dv = self.v[i + 1] - self.v[i];
                if dv < 0.0 {
                    C_Q * self.rho[i] * dv * dv
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// A stable timestep from the CFL condition.
    pub fn cfl_dt(&self) -> f64 {
        let mut dt = f64::INFINITY;
        for i in 0..self.n {
            let dx = self.x[i + 1] - self.x[i];
            let cs = (self.gamma * self.p[i] / self.rho[i]).sqrt();
            dt = dt.min(0.25 * dx / (cs + 1e-12));
        }
        dt
    }
}

/// One native timestep: the same physics as [`HydroState::step_serial`],
/// with each loop a taskloop through `policy` (force, accel+vel, position,
/// zone/EOS sites). Produces bit-identical results to the serial step.
pub fn step_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    state: &mut HydroState,
    sites: &mut SiteRegistry,
    dt: f64,
    stats: &mut RunStats,
) {
    let n = state.n;
    let grain_nodes = ((n + 1) / 128).max(8);
    let grain_zones = (n / 128).max(8);
    let s_force = sites.site("lulesh/force");
    let s_vel = sites.site("lulesh/accel-vel");
    let s_pos = sites.site("lulesh/position");
    let s_eos = sites.site("lulesh/eos");

    let q = state.viscosity();

    // Force + acceleration per node.
    let mut accel = vec![0.0; n + 1];
    {
        let out = SyncSlice::new(&mut accel);
        let (p, mass) = (&state.p, &state.mass);
        let (_, rep) = run_native_invocation(pool, policy, s_force, 0..n + 1, grain_nodes, |is| {
            for i in is {
                let pl = if i > 0 {
                    p[i - 1] + q[i - 1]
                } else {
                    p[0] + q[0]
                };
                let pr = if i < n {
                    p[i] + q[i]
                } else {
                    p[n - 1] + q[n - 1]
                };
                let m = 0.5
                    * (if i > 0 { mass[i - 1] } else { mass[0] }
                        + if i < n { mass[i] } else { mass[n - 1] });
                // SAFETY: node indices are disjoint between chunks.
                unsafe { out.write(i, (pl - pr) / m) };
            }
        });
        stats.add(&rep);
    }

    // Velocity update.
    {
        let v = SyncSlice::new(&mut state.v);
        let (_, rep) = run_native_invocation(pool, policy, s_vel, 0..n + 1, grain_nodes, |is| {
            for i in is {
                // SAFETY: node indices are disjoint between chunks.
                unsafe { *v.get_mut(i) += dt * accel[i] };
            }
        });
        stats.add(&rep);
    }
    state.v[0] = 0.0;
    state.v[n] = 0.0;

    // Position update.
    {
        let x = SyncSlice::new(&mut state.x);
        let v = &state.v;
        let (_, rep) = run_native_invocation(pool, policy, s_pos, 0..n + 1, grain_nodes, |is| {
            for i in is {
                // SAFETY: node indices are disjoint between chunks.
                unsafe { *x.get_mut(i) += dt * v[i] };
            }
        });
        stats.add(&rep);
    }

    // Zone update: volume, density, energy, EOS.
    {
        let rho = SyncSlice::new(&mut state.rho);
        let e = SyncSlice::new(&mut state.e);
        let p = SyncSlice::new(&mut state.p);
        let (x, mass, gamma) = (&state.x, &state.mass, state.gamma);
        let (_, rep) = run_native_invocation(pool, policy, s_eos, 0..n, grain_zones, |is| {
            for i in is {
                // SAFETY: zone indices are disjoint between chunks; `x` is
                // read-only in this phase.
                unsafe {
                    let dx = x[i + 1] - x[i];
                    let new_rho = mass[i] / dx;
                    let dv_specific = 1.0 / new_rho - 1.0 / rho.read(i);
                    let mut ei = e.read(i) - (p.read(i) + q[i]) * dv_specific;
                    ei = ei.max(1e-12);
                    e.write(i, ei);
                    rho.write(i, new_rho);
                    p.write(i, (gamma - 1.0) * new_rho * ei);
                }
            }
        });
        stats.add(&rep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{all_finite, max_abs_diff};
    use ilan::BaselinePolicy;
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::presets;

    #[test]
    fn sod_setup_shape() {
        let s = HydroState::sod(100);
        assert_eq!(s.x.len(), 101);
        assert_eq!(s.rho[0], 1.0);
        assert_eq!(s.rho[99], 0.125);
        assert!(s.total_mass() > 0.0);
    }

    #[test]
    fn serial_step_conserves_mass_and_roughly_energy() {
        let mut s = HydroState::sod(200);
        let m0 = s.total_mass();
        let e0 = s.total_energy();
        for _ in 0..100 {
            let dt = s.cfl_dt();
            s.step_serial(dt);
        }
        assert_eq!(s.total_mass(), m0, "Lagrangian mass must be exact");
        let e1 = s.total_energy();
        assert!((e1 - e0).abs() / e0 < 0.05, "energy drifted: {e0} → {e1}");
        assert!(all_finite(&s.p));
        // The shock moved: right half is no longer uniform.
        assert!(s.v.iter().any(|&v| v.abs() > 1e-3));
    }

    #[test]
    fn mesh_stays_monotone() {
        let mut s = HydroState::sod(150);
        for _ in 0..200 {
            let dt = s.cfl_dt();
            s.step_serial(dt);
            assert!(s.x.windows(2).all(|w| w[1] > w[0]), "mesh tangled");
        }
    }

    #[test]
    fn native_step_matches_serial_bitwise() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let mut parallel = HydroState::sod(300);
        let mut serial = HydroState::sod(300);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;
        for _ in 0..50 {
            let dt = serial.cfl_dt();
            let dt_par = parallel.cfl_dt();
            assert_eq!(dt, dt_par);
            step_native(
                &pool,
                &mut policy,
                &mut parallel,
                &mut sites,
                dt,
                &mut stats,
            );
            serial.step_serial(dt);
        }
        assert_eq!(max_abs_diff(&parallel.x, &serial.x), 0.0);
        assert_eq!(max_abs_diff(&parallel.e, &serial.e), 0.0);
        assert_eq!(max_abs_diff(&parallel.p, &serial.p), 0.0);
        assert_eq!(stats.invocations, 200); // 4 loops × 50 steps
    }

    #[test]
    fn sim_profile_has_diverse_sites() {
        let topo = presets::epyc_9354_2s();
        let app = sim_app(&topo, Scale::Quick);
        assert_eq!(app.sites.len(), 4);
        // Force loop is heavier than the nodal updates.
        let mean = |site: &crate::SimSite| {
            site.tasks.iter().map(|t| t.ideal_ns(22.0)).sum::<f64>() / site.tasks.len() as f64
        };
        assert!(mean(&app.sites[0]) > 2.0 * mean(&app.sites[2]));
    }
}
