//! **Matmul** — dense matrix multiplication.
//!
//! The paper's control benchmark: high arithmetic intensity, perfect
//! scaling, cache-blocked access. NUMA-aware optimisation has nothing to
//! offer, so ILAN shows a *slight* performance reduction — the cost of the
//! exploration phase plus per-invocation configuration selection — and a
//! predictable increase in scheduling overhead (Figure 5). Reproducing this
//! regression honestly matters as much as reproducing the wins.
//!
//! Native kernel: `C += A·B` blocked over rows, with a taskloop over row
//! blocks, iterated like the paper's 200-iteration kernel loop.

use crate::ptr::SyncSlice;
use crate::spec::{blocked_tasks, Scale, SimApp, SimSite};
use ilan::driver::run_native_invocation;
use ilan::{Policy, RunStats, SiteRegistry};
use ilan_numasim::Locality;
use ilan_runtime::ThreadPool;
use ilan_topology::Topology;

/// Simulator profile (see module docs).
pub fn sim_app(topology: &Topology, scale: Scale) -> SimApp {
    let chunks = scale.chunks(256);
    // Compute-bound: memory stream is a trickle next to the FLOPs; blocked
    // access keeps it in cache. Perfectly balanced.
    let gemm = SimSite {
        name: "matmul/gemm",
        tasks: blocked_tasks(
            topology,
            chunks,
            1_300_000.0,
            550_000.0,
            Locality::Chunked,
            0.45,
            true,
            |_| 1.0,
        ),
    };
    SimApp {
        name: "Matmul",
        sites: vec![gemm],
        schedule: vec![0],
        steps: scale.steps(200),
        serial_ns: 200_000.0,
    }
}

/// A row-major square matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Dimension.
    pub n: usize,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Deterministic pseudo-random matrix with entries in `[-0.5, 0.5)`.
    pub fn random(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let data = (0..n * n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        Matrix { n, data }
    }

    /// Naive serial reference: `C = A·B`.
    pub fn mul_serial(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.n, b.n, "dimension mismatch");
        let n = self.n;
        let mut c = Matrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let aik = self.data[i * n + k];
                for j in 0..n {
                    c.data[i * n + j] += aik * b.data[k * n + j];
                }
            }
        }
        c
    }
}

/// Parallel `C = A·B` on the native runtime: a taskloop over rows with an
/// i-k-j kernel (cache-friendly row streaming).
pub fn mul_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    a: &Matrix,
    b: &Matrix,
    sites: &mut SiteRegistry,
    stats: &mut RunStats,
) -> Matrix {
    assert_eq!(a.n, b.n, "dimension mismatch");
    let n = a.n;
    let mut c = Matrix::zeros(n);
    let site = sites.site("matmul/gemm");
    let grain = (n / 64).max(1);
    {
        let out = SyncSlice::new(&mut c.data);
        let (_, rep) = run_native_invocation(pool, policy, site, 0..n, grain, |rows| {
            let mut acc = vec![0.0f64; n];
            for i in rows {
                acc.iter_mut().for_each(|x| *x = 0.0);
                for k in 0..n {
                    let aik = a.data[i * n + k];
                    if aik != 0.0 {
                        let brow = &b.data[k * n..(k + 1) * n];
                        for (j, bv) in brow.iter().enumerate() {
                            acc[j] += aik * bv;
                        }
                    }
                }
                for (j, &v) in acc.iter().enumerate() {
                    // SAFETY: rows are disjoint between chunks.
                    unsafe { out.write(i * n + j, v) };
                }
            }
        });
        stats.add(&rep);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::max_abs_diff;
    use ilan::{BaselinePolicy, IlanParams, IlanScheduler};
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::presets;

    #[test]
    fn serial_identity() {
        let n = 8;
        let mut eye = Matrix::zeros(n);
        for i in 0..n {
            eye.data[i * n + i] = 1.0;
        }
        let a = Matrix::random(n, 3);
        let c = a.mul_serial(&eye);
        assert!(max_abs_diff(&c.data, &a.data) < 1e-15);
    }

    #[test]
    fn parallel_matches_serial() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let a = Matrix::random(48, 1);
        let b = Matrix::random(48, 2);
        let reference = a.mul_serial(&b);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;
        let c = mul_native(&pool, &mut policy, &a, &b, &mut sites, &mut stats);
        assert!(max_abs_diff(&c.data, &reference.data) < 1e-12);
        assert_eq!(stats.invocations, 1);
    }

    #[test]
    fn repeated_iterations_under_ilan_stay_correct() {
        let topo = presets::tiny_2x4();
        let pool = ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).unwrap();
        let a = Matrix::random(32, 5);
        let b = Matrix::random(32, 6);
        let reference = a.mul_serial(&b);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        // Enough iterations to take ILAN through search + trial + settle.
        for _ in 0..10 {
            let c = mul_native(&pool, &mut ilan, &a, &b, &mut sites, &mut stats);
            assert!(max_abs_diff(&c.data, &reference.data) < 1e-12);
        }
        assert_eq!(stats.invocations, 10);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_mismatched_dims() {
        let a = Matrix::random(4, 1);
        let b = Matrix::random(5, 2);
        a.mul_serial(&b);
    }

    #[test]
    fn sim_profile_is_compute_bound() {
        let topo = presets::epyc_9354_2s();
        let app = sim_app(&topo, Scale::Quick);
        let gemm = &app.sites[0];
        for t in &gemm.tasks {
            let mem_ns = t.mem_bytes / 22.0;
            assert!(
                t.compute_ns > 10.0 * mem_ns,
                "matmul must be compute-dominated"
            );
        }
    }
}
