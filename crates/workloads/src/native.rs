//! Whole-application native runs.
//!
//! [`run_native_app`] executes one full benchmark — not a single loop — on
//! the native runtime under any policy, at laptop scale, returning the run
//! statistics and a correctness check. This is the native counterpart of
//! [`SimApp::run`](crate::SimApp::run): the same seven applications, real
//! threads and real math instead of the simulator.

use crate::spec::Workload;
use crate::verify::{all_finite, max_abs_diff};
use crate::{bt, cg, ft, lu, lulesh, matmul, sp};
use ilan::{Policy, RunStats, SiteRegistry};
use ilan_runtime::ThreadPool;

/// Problem sizes for a native run.
#[derive(Clone, Copy, Debug)]
pub struct NativeScale {
    /// Linear problem dimension (meaning varies per benchmark).
    pub size: usize,
    /// Timesteps / iterations.
    pub steps: usize,
}

impl NativeScale {
    /// Small sizes suitable for CI and single-core machines (< 1 s each).
    pub fn quick() -> Self {
        NativeScale { size: 24, steps: 6 }
    }

    /// Laptop-benchmark sizes (a few seconds per benchmark).
    pub fn laptop() -> Self {
        NativeScale {
            size: 64,
            steps: 20,
        }
    }
}

/// Result of one native application run.
#[derive(Clone, Debug)]
pub struct NativeRunSummary {
    /// The benchmark.
    pub workload: Workload,
    /// Aggregated taskloop statistics.
    pub stats: RunStats,
    /// Real wall time of the whole application.
    pub wall: std::time::Duration,
    /// Benchmark-specific correctness measure (residual / max error /
    /// conservation drift). Small is good; see `check_threshold`.
    pub check: f64,
    /// The bound `check` must stay under for the run to count as correct.
    pub check_threshold: f64,
}

impl NativeRunSummary {
    /// Whether the run's numerics verified.
    pub fn verified(&self) -> bool {
        self.check.is_finite() && self.check < self.check_threshold
    }
}

/// Runs one benchmark natively under `policy`.
///
/// Every parallel loop goes through the policy (so ILAN explores and
/// settles); the returned summary carries a per-benchmark correctness
/// check computed against a serial reference or an analytic invariant.
pub fn run_native_app(
    workload: Workload,
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    scale: NativeScale,
) -> NativeRunSummary {
    let mut sites = SiteRegistry::new();
    let mut stats = RunStats::new();
    let started = std::time::Instant::now();

    let (check, check_threshold) = match workload {
        Workload::Cg => {
            let side = scale.size.max(12);
            let matrix = cg::Csr::poisson_irregular(side, 3, 71);
            let result = cg::run_native(pool, policy, &matrix, scale.steps * 20);
            stats = result.stats;
            (result.residual, 1e-6)
        }
        Workload::Ft => {
            let n = (scale.size.max(16)).next_power_of_two();
            let mut grid = ft::FtGrid::new(n);
            let original = grid.re.clone();
            for _ in 0..scale.steps.div_ceil(2).max(1) {
                ft::fft2d_native(pool, policy, &mut grid, &mut sites, false, &mut stats);
                ft::fft2d_native(pool, policy, &mut grid, &mut sites, true, &mut stats);
            }
            let err_2d = max_abs_diff(&grid.re, &original);
            // One full 3-D round trip on a small cube (the true FT shape).
            let mut cube = ft::FtCube::new((n / 4).max(8));
            let cube_re = cube.re.clone();
            ft::fft3d_native(pool, policy, &mut cube, &mut sites, false, &mut stats);
            ft::fft3d_native(pool, policy, &mut cube, &mut sites, true, &mut stats);
            let err_3d = max_abs_diff(&cube.re, &cube_re);
            (err_2d.max(err_3d), 1e-8)
        }
        Workload::Bt => {
            let n = scale.size.clamp(8, 28);
            let mut parallel = bt::BtGrid::new(n);
            let mut serial = bt::BtGrid::new(n);
            for _ in 0..scale.steps.min(6) {
                bt::step_native(pool, policy, &mut parallel, &mut sites, &mut stats);
                serial.step_serial();
            }
            // Plus one 5×5 block sweep, the true-BT formulation.
            let mut blocks = bt::BtBlockField::new(n.min(12));
            bt::block_sweep_native(pool, policy, &mut blocks, &mut sites, 0, &mut stats);
            let flat: Vec<f64> = blocks.u.iter().flatten().copied().collect();
            let grid_err = max_abs_diff(&parallel.u, &serial.u);
            (
                if all_finite(&flat) {
                    grid_err
                } else {
                    f64::NAN
                },
                1e-10,
            )
        }
        Workload::Sp => {
            let n = scale.size.clamp(8, 24);
            let mut parallel = sp::SpGrid::new(n);
            let mut serial = sp::SpGrid::new(n);
            for _ in 0..scale.steps.min(6) {
                sp::step_native(pool, policy, &mut parallel, &mut sites, &mut stats);
                serial.step_serial();
            }
            (max_abs_diff(&parallel.u, &serial.u), 1e-9)
        }
        Workload::Lu => {
            let n = scale.size.max(16);
            let mut parallel = lu::LuGrid::new(n);
            let mut serial = lu::LuGrid::new(n);
            for _ in 0..scale.steps {
                lu::sweep_native(pool, policy, &mut parallel, &mut sites, &mut stats);
                serial.sweep_serial();
            }
            (max_abs_diff(&parallel.u, &serial.u), 1e-12)
        }
        Workload::Matmul => {
            let n = scale.size.max(16);
            let a = matmul::Matrix::random(n, 31);
            let b = matmul::Matrix::random(n, 32);
            let reference = a.mul_serial(&b);
            let mut worst = 0.0f64;
            for _ in 0..scale.steps {
                let c = matmul::mul_native(pool, policy, &a, &b, &mut sites, &mut stats);
                worst = worst.max(max_abs_diff(&c.data, &reference.data));
            }
            (worst, 1e-11)
        }
        Workload::Lulesh => {
            let zones = (scale.size * 12).max(120);
            let mut state = lulesh::HydroState::sod(zones);
            let mass0 = state.total_mass();
            let e0 = state.total_energy();
            for _ in 0..scale.steps * 10 {
                let dt = state.cfl_dt();
                lulesh::step_native(pool, policy, &mut state, &mut sites, dt, &mut stats);
            }
            let mass_err = (state.total_mass() - mass0).abs();
            let energy_drift = (state.total_energy() / e0 - 1.0).abs();
            (mass_err.max(energy_drift), 0.06)
        }
    };

    NativeRunSummary {
        workload,
        stats,
        wall: started.elapsed(),
        check,
        check_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_WORKLOADS;
    use ilan::{BaselinePolicy, IlanParams, IlanScheduler};
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::presets;

    #[test]
    fn every_app_runs_and_verifies_under_baseline() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        for w in ALL_WORKLOADS {
            let mut policy = BaselinePolicy;
            let summary = run_native_app(w, &pool, &mut policy, NativeScale::quick());
            assert!(
                summary.verified(),
                "{}: check {} over threshold {}",
                w.name(),
                summary.check,
                summary.check_threshold
            );
            assert!(summary.stats.invocations > 0, "{} ran no loops", w.name());
        }
    }

    #[test]
    fn every_app_verifies_under_ilan() {
        let topo = presets::tiny_2x4();
        let pool = ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).unwrap();
        for w in ALL_WORKLOADS {
            let mut policy = IlanScheduler::new(IlanParams::for_topology(&topo));
            let summary = run_native_app(w, &pool, &mut policy, NativeScale::quick());
            assert!(
                summary.verified(),
                "{} under ILAN: check {}",
                w.name(),
                summary.check
            );
        }
    }
}
