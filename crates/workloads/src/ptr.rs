//! [`SyncSlice`]: shared mutable access to disjoint slice regions.
//!
//! Taskloop bodies receive disjoint iteration ranges, so concurrent chunks
//! write non-overlapping elements of output arrays. Rust's borrow checker
//! cannot see that disjointness through a `Fn(Range<usize>)` closure, so the
//! native kernels use this minimal wrapper — the same role
//! `rayon::slice::chunks_mut` plays, but compatible with an index-based
//! taskloop API.

use std::cell::UnsafeCell;

/// A slice that may be written concurrently **at disjoint indices**.
///
/// # Safety contract
/// Callers must guarantee that no two threads access the same index
/// concurrently and that no other reference to the underlying slice is used
/// for the wrapper's lifetime. Taskloop chunking guarantees the former for
/// bodies that only touch their own range.
pub struct SyncSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: access discipline is delegated to the caller per the contract
// above; with disjoint indices there are no data races.
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` guarantees unique ownership; `UnsafeCell<T>` has
        // the same layout as `T`.
        let data = unsafe {
            std::slice::from_raw_parts(slice.as_mut_ptr().cast::<UnsafeCell<T>>(), slice.len())
        };
        SyncSlice { data }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No other thread may access `index` concurrently.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        // SAFETY: delegated to the caller (disjoint-index contract).
        unsafe { *self.data[index].get() = value }
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    /// No other thread may write `index` concurrently.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        // SAFETY: delegated to the caller (disjoint-index contract).
        unsafe { *self.data[index].get() }
    }

    /// Returns a mutable reference to the element at `index`.
    ///
    /// # Safety
    /// No other thread may access `index` for the reference's lifetime.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        // SAFETY: delegated to the caller (disjoint-index contract).
        unsafe { &mut *self.data[index].get() }
    }

    /// Views the whole underlying slice immutably — for stencil kernels that
    /// read stable neighbours while writing disjoint points.
    ///
    /// # Safety
    /// Indices read through the returned slice must not be written
    /// concurrently by any thread (e.g. wavefront ordering guarantees the
    /// neighbours read are from already-completed diagonals).
    #[inline]
    pub unsafe fn as_slice(&self) -> &[T] {
        // SAFETY: UnsafeCell<T> is layout-compatible with T; aliasing
        // discipline is delegated to the caller per the contract above.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().cast::<T>(), self.data.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_writes_visible_after_join() {
        let mut v = vec![0usize; 1000];
        {
            let s = SyncSlice::new(&mut v);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in (t * 250)..((t + 1) * 250) {
                            // SAFETY: each thread owns its own quarter.
                            unsafe { s.write(i, i * 2) };
                        }
                    });
                }
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut v = vec![1.5f64; 4];
        let s = SyncSlice::new(&mut v);
        // SAFETY: single-threaded here.
        unsafe {
            s.write(2, 7.25);
            assert_eq!(s.read(2), 7.25);
            *s.get_mut(0) += 1.0;
            assert_eq!(s.read(0), 2.5);
        }
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}
