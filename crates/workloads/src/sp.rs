//! NPB **SP** — Scalar Penta-diagonal pseudo-application.
//!
//! SP has the same ADI structure as BT but with scalar penta-diagonal
//! systems and a substantially higher memory intensity per flop. The paper's
//! headline number comes from SP: +45.8% with full ILAN (Figure 2), because
//! *both* mechanisms fire — hierarchical placement restores locality *and*
//! moldability backs the loop off the bandwidth wall (Figure 3 shows SP's
//! average core count reduced; Figure 4 shows the no-moldability version
//! keeping only part of the gain).
//!
//! Native kernel: penta-diagonal line solves along x, y, z of an `n³` grid
//! plus an RHS pass, each a taskloop over independent lines.

use crate::ptr::SyncSlice;
use crate::spec::{blocked_tasks, jitter_weight, Scale, SimApp, SimSite};
use ilan::driver::run_native_invocation;
use ilan::{Policy, RunStats, SiteRegistry};
use ilan_numasim::Locality;
use ilan_runtime::ThreadPool;
use ilan_topology::Topology;

/// Simulator profile (see module docs).
pub fn sim_app(topology: &Topology, scale: Scale) -> SimApp {
    let chunks = scale.chunks(256);
    // Bandwidth-hungry sweeps: aggregate desired bandwidth at 64 cores is
    // roughly 2× the machine (the moldability trigger), but — unlike CG —
    // access is contiguous, so hierarchical placement also pays off for the
    // baseline comparison (the locality trigger). The class-D working set
    // exceeds L3, so there is no reuse discount. Mild boundary imbalance.
    // The x-sweep walks contiguous lines (pure streaming); the y and z
    // sweeps walk strided planes whose pages are spread over every node, so
    // their access is mostly irregular — and, at ~1.9× machine bandwidth of
    // aggregate demand, exactly the loops moldability rescues.
    let sweep = |name: &'static str, salt: u64, locality: Locality| SimSite {
        name,
        tasks: blocked_tasks(
            topology,
            chunks,
            30_000.0,
            5_500_000.0,
            locality,
            0.0,
            false,
            move |i| jitter_weight(i, salt, 0.12),
        ),
    };
    let rhs = SimSite {
        name: "sp/rhs",
        tasks: blocked_tasks(
            topology,
            chunks,
            40_000.0,
            3_000_000.0,
            Locality::Chunked,
            0.0,
            false,
            |i| jitter_weight(i, 0x59, 0.08),
        ),
    };
    SimApp {
        name: "SP",
        sites: vec![
            rhs,
            sweep("sp/x-solve", 0x51, Locality::Chunked),
            sweep("sp/y-solve", 0x52, Locality::Scattered { spread: 0.85 }),
            sweep("sp/z-solve", 0x53, Locality::Scattered { spread: 0.85 }),
        ],
        schedule: vec![0, 1, 2, 3],
        steps: scale.steps(160),
        serial_ns: 350_000.0,
    }
}

/// Penta-diagonal coefficients `(a2, a1, b, c1, c2)` — the second sub-,
/// first sub-, main, first super- and second super-diagonals. Diagonally
/// dominant.
pub const SP_COEFFS: (f64, f64, f64, f64, f64) = (0.5, -2.0, 6.0, -2.0, 0.5);

/// Solves one constant-coefficient penta-diagonal system in place by banded
/// Gaussian elimination without pivoting (safe: diagonally dominant).
/// `d` holds the RHS on entry and the solution on exit. `work` needs
/// `2 × d.len()` slots.
pub fn penta_solve(coeffs: (f64, f64, f64, f64, f64), d: &mut [f64], work: &mut [f64]) {
    let n = d.len();
    assert!(n >= 3, "penta system needs at least 3 unknowns");
    assert!(work.len() >= 2 * n, "work buffer too small");
    let (a2, a1, b, c1, c2) = coeffs;
    assert!(
        b.abs() > a2.abs() + a1.abs() + c1.abs() + c2.abs(),
        "matrix must be diagonally dominant"
    );
    // Banded LU: diag[i] and the two eliminated super-diagonals per row.
    let (sup1, sup2) = work.split_at_mut(n);
    let mut diag = vec![0.0; n];

    diag[0] = b;
    sup1[0] = c1;
    sup2[0] = c2;
    // Row 1: eliminate a1.
    let m1 = a1 / diag[0];
    diag[1] = b - m1 * sup1[0];
    sup1[1] = c1 - m1 * sup2[0];
    sup2[1] = c2;
    d[1] -= m1 * d[0];
    for i in 2..n {
        // Eliminate a2 using row i−2, then the updated a1 using row i−1.
        let m2 = a2 / diag[i - 2];
        let a1_upd = a1 - m2 * sup1[i - 2];
        let b_upd = b - m2 * sup2[i - 2];
        d[i] -= m2 * d[i - 2];
        let m1 = a1_upd / diag[i - 1];
        diag[i] = b_upd - m1 * sup1[i - 1];
        sup1[i] = if i + 1 < n {
            c1 - m1 * sup2[i - 1]
        } else {
            0.0
        };
        sup2[i] = if i + 2 < n { c2 } else { 0.0 };
        d[i] -= m1 * d[i - 1];
    }
    // Back substitution.
    d[n - 1] /= diag[n - 1];
    d[n - 2] = (d[n - 2] - sup1[n - 2] * d[n - 1]) / diag[n - 2];
    for i in (0..n - 2).rev() {
        d[i] = (d[i] - sup1[i] * d[i + 1] - sup2[i] * d[i + 2]) / diag[i];
    }
}

/// A cubic field with SP-style penta-diagonal sweeps, mirroring
/// [`BtGrid`](crate::bt::BtGrid).
pub struct SpGrid {
    /// Side length.
    pub n: usize,
    /// Field values, index `x + n·(y + n·z)`.
    pub u: Vec<f64>,
}

impl SpGrid {
    /// Deterministic initial field.
    pub fn new(n: usize) -> SpGrid {
        assert!(n >= 3, "SP grid needs n ≥ 3");
        let u = (0..n * n * n)
            .map(|i| 1.0 + ((i % 97) as f64 * 0.13).sin() * 0.4)
            .collect();
        SpGrid { n, u }
    }

    /// Serial reference timestep (RHS + three penta sweeps).
    pub fn step_serial(&mut self) {
        self.rhs_serial();
        for axis in 0..3 {
            self.sweep_serial(axis);
        }
    }

    fn rhs_serial(&mut self) {
        let n = self.n;
        let old = self.u.clone();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    self.u[x + n * (y + n * z)] = sp_rhs_point(&old, n, x, y, z);
                }
            }
        }
    }

    fn sweep_serial(&mut self, axis: usize) {
        let n = self.n;
        let mut line = vec![0.0; n];
        let mut work = vec![0.0; 2 * n];
        for l in 0..n * n {
            let (j, k) = (l % n, l / n);
            for (i, slot) in line.iter_mut().enumerate() {
                *slot = self.u[crate::bt::line_index(n, axis, i, j, k)];
            }
            penta_solve(SP_COEFFS, &mut line, &mut work);
            for (i, &v) in line.iter().enumerate() {
                self.u[crate::bt::line_index(n, axis, i, j, k)] = v;
            }
        }
    }
}

/// Weighted 7-point stencil used as SP's RHS (clamped edges).
#[inline]
fn sp_rhs_point(u: &[f64], n: usize, x: usize, y: usize, z: usize) -> f64 {
    let at = |x: usize, y: usize, z: usize| u[x + n * (y + n * z)];
    let c = at(x, y, z);
    c + 0.04
        * (at(x.saturating_sub(1), y, z)
            + at((x + 1).min(n - 1), y, z)
            + at(x, y.saturating_sub(1), z)
            + at(x, (y + 1).min(n - 1), z)
            + at(x, y, z.saturating_sub(1))
            + at(x, y, (z + 1).min(n - 1))
            - 6.0 * c)
}

/// One native SP timestep (RHS + three penta-diagonal sweeps as taskloops).
pub fn step_native(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    grid: &mut SpGrid,
    sites: &mut SiteRegistry,
    stats: &mut RunStats,
) {
    let n = grid.n;
    let s_rhs = sites.site("sp/rhs");
    let s_sweep = [
        sites.site("sp/x-solve"),
        sites.site("sp/y-solve"),
        sites.site("sp/z-solve"),
    ];

    {
        let old = grid.u.clone();
        let out = SyncSlice::new(&mut grid.u);
        let grain = (n / 8).max(1);
        let (_, rep) = run_native_invocation(pool, policy, s_rhs, 0..n, grain, |zs| {
            for z in zs {
                for y in 0..n {
                    for x in 0..n {
                        // SAFETY: z-planes are disjoint between chunks.
                        unsafe {
                            out.write(x + n * (y + n * z), sp_rhs_point(&old, n, x, y, z));
                        }
                    }
                }
            }
        });
        stats.add(&rep);
    }

    for (axis, &site) in s_sweep.iter().enumerate() {
        let lines = n * n;
        let grain = (lines / 64).max(1);
        let field = SyncSlice::new(&mut grid.u);
        let (_, rep) = run_native_invocation(pool, policy, site, 0..lines, grain, |range| {
            let mut line = vec![0.0; n];
            let mut work = vec![0.0; 2 * n];
            for l in range {
                let (j, k) = (l % n, l / n);
                for (i, slot) in line.iter_mut().enumerate() {
                    // SAFETY: lines are disjoint between chunks.
                    unsafe { *slot = field.read(crate::bt::line_index(n, axis, i, j, k)) };
                }
                penta_solve(SP_COEFFS, &mut line, &mut work);
                for (i, &v) in line.iter().enumerate() {
                    // SAFETY: lines are disjoint between chunks.
                    unsafe { field.write(crate::bt::line_index(n, axis, i, j, k), v) };
                }
            }
        });
        stats.add(&rep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{all_finite, max_abs_diff};
    use ilan::BaselinePolicy;
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::presets;

    #[test]
    fn penta_matches_manufactured_solution() {
        let n = 12;
        let expected: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).cos() + 2.0).collect();
        let (a2, a1, b, c1, c2) = SP_COEFFS;
        let mut d = vec![0.0; n];
        for i in 0..n {
            d[i] = b * expected[i];
            if i >= 2 {
                d[i] += a2 * expected[i - 2];
            }
            if i >= 1 {
                d[i] += a1 * expected[i - 1];
            }
            if i + 1 < n {
                d[i] += c1 * expected[i + 1];
            }
            if i + 2 < n {
                d[i] += c2 * expected[i + 2];
            }
        }
        let mut work = vec![0.0; 2 * n];
        penta_solve(SP_COEFFS, &mut d, &mut work);
        assert!(max_abs_diff(&d, &expected) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "diagonally dominant")]
    fn penta_rejects_weak_diagonal() {
        let mut d = vec![1.0; 5];
        let mut work = vec![0.0; 10];
        penta_solve((1.0, 1.0, 2.0, 1.0, 1.0), &mut d, &mut work);
    }

    #[test]
    fn penta_small_systems() {
        // n = 3 exercises all the boundary branches.
        let expected = vec![1.0, -2.0, 3.0];
        let (a2, a1, b, c1, c2) = SP_COEFFS;
        let mut d = vec![
            b * expected[0] + c1 * expected[1] + c2 * expected[2],
            a1 * expected[0] + b * expected[1] + c1 * expected[2],
            a2 * expected[0] + a1 * expected[1] + b * expected[2],
        ];
        let mut work = vec![0.0; 6];
        penta_solve(SP_COEFFS, &mut d, &mut work);
        assert!(max_abs_diff(&d, &expected) < 1e-12);
    }

    #[test]
    fn native_step_matches_serial() {
        let pool =
            ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
        let n = 10;
        let mut parallel = SpGrid::new(n);
        let mut serial = SpGrid::new(n);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        let mut policy = BaselinePolicy;
        for _ in 0..3 {
            step_native(&pool, &mut policy, &mut parallel, &mut sites, &mut stats);
            serial.step_serial();
        }
        assert!(max_abs_diff(&parallel.u, &serial.u) < 1e-11);
        assert!(all_finite(&parallel.u));
    }

    #[test]
    fn sim_profile_saturates_bandwidth() {
        let topo = presets::epyc_9354_2s();
        let app = sim_app(&topo, Scale::Quick);
        // The sweeps (sites 1..4) must exceed machine bandwidth at 64 cores.
        let sweep = &app.sites[1];
        let desired64: f64 = sweep
            .tasks
            .iter()
            .take(64)
            .map(|t| t.mem_bytes / t.ideal_ns(22.0))
            .sum();
        assert!(
            desired64 > 1.4 * 640.0,
            "SP sweep must saturate memory: {desired64}"
        );
        // And be locality-sensitive (contiguous access), unlike CG — but too
        // large for L3 reuse at class-D scale.
        assert!(sweep
            .tasks
            .iter()
            .all(|t| matches!(t.locality, Locality::Chunked) && !t.fits_l3));
    }
}
