//! Common simulated-application machinery.

use ilan::driver::run_sim_invocation;
use ilan::{Policy, RunStats, SiteId};
use ilan_numasim::{SimMachine, TaskSpec};
use ilan_topology::Topology;

/// Problem scale for the simulator profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scale {
    /// Few timesteps, few chunks: fast enough for unit tests and CI.
    Quick,
    /// The paper-shaped run: enough invocations per site to amortize ILAN's
    /// exploration, as in the evaluation (§4.2).
    #[default]
    Paper,
}

impl Scale {
    /// Scales a step count.
    pub fn steps(self, paper: usize) -> usize {
        match self {
            Scale::Quick => (paper / 10).max(12),
            Scale::Paper => paper,
        }
    }

    /// Scales a per-loop chunk count.
    pub fn chunks(self, paper: usize) -> usize {
        match self {
            Scale::Quick => (paper / 2).max(64),
            Scale::Paper => paper,
        }
    }
}

/// One taskloop site of a simulated application.
#[derive(Clone, Debug)]
pub struct SimSite {
    /// Human-readable name (`"cg/spmv"`).
    pub name: &'static str,
    /// The chunks of one invocation of this loop.
    pub tasks: Vec<TaskSpec>,
}

/// A simulated application: a fixed per-timestep sequence of taskloop
/// invocations plus serial glue time.
///
/// The structure (which loops, how many chunks, what cost model) is fixed at
/// construction from a fixed workload seed — the same program and input every
/// run. Run-to-run variation comes only from the machine's noise seed.
#[derive(Clone, Debug)]
pub struct SimApp {
    /// Benchmark name (`"CG"`).
    pub name: &'static str,
    /// The application's taskloop sites.
    pub sites: Vec<SimSite>,
    /// Sequence of site indices executed in each timestep.
    pub schedule: Vec<usize>,
    /// Number of timesteps.
    pub steps: usize,
    /// Serial (non-taskloop) time per timestep, ns.
    pub serial_ns: f64,
}

impl SimApp {
    /// Validates internal consistency (panics on malformed apps — a
    /// programming error in a workload constructor).
    pub fn validate(&self) {
        assert!(!self.sites.is_empty(), "app needs at least one site");
        assert!(!self.schedule.is_empty(), "app needs a schedule");
        assert!(self.steps > 0, "app needs at least one step");
        for &s in &self.schedule {
            assert!(s < self.sites.len(), "schedule references missing site {s}");
        }
        for site in &self.sites {
            assert!(!site.tasks.is_empty(), "site {} has no tasks", site.name);
            for t in &site.tasks {
                t.validate();
            }
        }
    }

    /// Total taskloop invocations in one run.
    pub fn invocations(&self) -> usize {
        self.steps * self.schedule.len()
    }

    /// Runs the application once on `machine` under `policy`, returning the
    /// run's aggregate statistics.
    pub fn run(&self, machine: &mut SimMachine, policy: &mut dyn Policy) -> RunStats {
        let mut stats = RunStats::new();
        for _ in 0..self.steps {
            for &idx in &self.schedule {
                let site = SiteId::new(idx as u64);
                let (_, report) = run_sim_invocation(machine, policy, site, &self.sites[idx].tasks);
                stats.add(&report);
            }
            machine.advance_serial(self.serial_ns);
            stats.add_serial(self.serial_ns);
        }
        stats
    }
}

/// Builds the chunks of one taskloop: chunk `i`'s data lives on the node
/// given by the blocked first-touch layout over all nodes (parallel
/// initialisation over the whole machine, as the NPB/LULESH codes do), with
/// per-chunk work factors supplied by `weight` (1.0 = nominal).
#[allow(clippy::too_many_arguments)] // internal builder mirroring TaskSpec's fields
pub(crate) fn blocked_tasks(
    topology: &Topology,
    chunks: usize,
    compute_ns: f64,
    mem_bytes: f64,
    locality: ilan_numasim::Locality,
    cache_reuse: f64,
    fits_l3: bool,
    weight: impl Fn(usize) -> f64,
) -> Vec<TaskSpec> {
    use ilan_topology::NodeId;
    let nodes = topology.num_nodes();
    let data_mask = topology.all_nodes();
    (0..chunks)
        .map(|i| {
            let w = weight(i);
            TaskSpec {
                compute_ns: compute_ns * w,
                mem_bytes: mem_bytes * w,
                home_node: NodeId::new(i * nodes / chunks),
                locality,
                data_mask,
                cache_reuse,
                fits_l3,
            }
        })
        .collect()
}

/// A deterministic pseudo-random weight in `[1−spread, 1+spread]` for chunk
/// `i` — the fixed, data-dependent imbalance of a workload (same every run).
pub(crate) fn jitter_weight(i: usize, salt: u64, spread: f64) -> f64 {
    // SplitMix64 on (i, salt): cheap, stable, well-distributed.
    let mut z = (i as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    1.0 + spread * (2.0 * u - 1.0)
}

/// The benchmarks of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// NPB Conjugate Gradient.
    Cg,
    /// NPB Fourier Transform.
    Ft,
    /// NPB Block Tri-diagonal pseudo-application.
    Bt,
    /// NPB Scalar Penta-diagonal pseudo-application.
    Sp,
    /// NPB Lower-Upper Gauss–Seidel pseudo-application.
    Lu,
    /// Dense matrix multiplication.
    Matmul,
    /// LULESH-like hydrodynamics proxy.
    Lulesh,
}

/// All seven benchmarks, in the paper's figure order.
pub const ALL_WORKLOADS: [Workload; 7] = [
    Workload::Ft,
    Workload::Bt,
    Workload::Cg,
    Workload::Lu,
    Workload::Sp,
    Workload::Matmul,
    Workload::Lulesh,
];

impl Workload {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Cg => "CG",
            Workload::Ft => "FT",
            Workload::Bt => "BT",
            Workload::Sp => "SP",
            Workload::Lu => "LU",
            Workload::Matmul => "Matmul",
            Workload::Lulesh => "LULESH",
        }
    }

    /// Builds the benchmark's simulator profile for `topology`.
    pub fn sim_app(self, topology: &Topology, scale: Scale) -> SimApp {
        let app = match self {
            Workload::Cg => crate::cg::sim_app(topology, scale),
            Workload::Ft => crate::ft::sim_app(topology, scale),
            Workload::Bt => crate::bt::sim_app(topology, scale),
            Workload::Sp => crate::sp::sim_app(topology, scale),
            Workload::Lu => crate::lu::sim_app(topology, scale),
            Workload::Matmul => crate::matmul::sim_app(topology, scale),
            Workload::Lulesh => crate::lulesh::sim_app(topology, scale),
        };
        app.validate();
        app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan::BaselinePolicy;
    use ilan_numasim::MachineParams;
    use ilan_topology::presets;

    #[test]
    fn scales() {
        assert_eq!(Scale::Paper.steps(200), 200);
        assert!(Scale::Quick.steps(200) < 200);
        assert!(Scale::Quick.steps(200) >= 12);
        assert!(Scale::Quick.chunks(256) >= 64);
    }

    #[test]
    fn all_apps_validate_and_run_quick() {
        let topo = presets::epyc_9354_2s();
        for w in ALL_WORKLOADS {
            let app = w.sim_app(&topo, Scale::Quick);
            assert_eq!(app.name, w.name());
            let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 7);
            // Run just a couple of steps' worth by truncating.
            let mut small = app.clone();
            small.steps = 2;
            let mut policy = BaselinePolicy;
            let stats = small.run(&mut machine, &mut policy);
            assert_eq!(stats.invocations as usize, small.invocations());
            assert!(stats.total_time_ns > 0.0, "{} produced no time", w.name());
        }
    }

    #[test]
    #[should_panic(expected = "schedule references missing site")]
    fn validate_catches_bad_schedule() {
        let app = SimApp {
            name: "bad",
            sites: vec![SimSite {
                name: "x",
                tasks: vec![],
            }],
            schedule: vec![3],
            steps: 1,
            serial_ns: 0.0,
        };
        app.validate();
    }
}
