//! Numerical verification helpers shared by the native kernels.

/// Maximum absolute element-wise difference between two slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Relative L2 error `‖a − b‖ / ‖b‖` (absolute L2 if `b` is zero).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn rel_l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    if den > 0.0 {
        num / den
    } else {
        num
    }
}

/// Whether every element is finite (no NaN/∞ escaped the kernel).
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn rel_l2_basic() {
        assert!((rel_l2_error(&[3.0, 4.0], &[0.0, 0.0]) - 5.0).abs() < 1e-12);
        assert!(rel_l2_error(&[1.0, 1.0], &[1.0, 1.0]) < 1e-15);
    }

    #[test]
    fn finite_detection() {
        assert!(all_finite(&[0.0, -1.0, 1e300]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        max_abs_diff(&[1.0], &[1.0, 2.0]);
    }
}
