//! Sparse linear solve under three schedulers.
//!
//! ```text
//! cargo run --release --example cg_solver [grid-side] [iterations]
//! ```
//!
//! Builds the NPB-CG-style irregular SPD matrix (five-point Laplacian plus
//! random couplings), solves `A·x = 1` with conjugate gradient on the native
//! runtime, and compares the default flat scheduler, static work-sharing and
//! ILAN — the real-code counterpart of the paper's CG experiment. On a
//! machine without NUMA the schedulers mostly tie; the point here is the
//! identical numerics and the per-scheduler runtime statistics.

use ilan_suite::prelude::*;
use ilan_suite::workloads::cg::{run_native, Csr};

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(96);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);

    let topo = ilan_suite::topology::detect::detect();
    println!("machine: {}", topo.summary());
    let matrix = Csr::poisson_irregular(side, 3, 2024);
    println!(
        "matrix: n={} nnz={} (avg {:.1} per row)",
        matrix.n(),
        matrix.nnz(),
        matrix.nnz() as f64 / matrix.n() as f64
    );

    let pool = ThreadPool::new(PoolConfig::new(topo.clone())).expect("pool");

    let mut policies: Vec<(&str, Box<dyn Policy>)> = vec![
        ("baseline", Box::new(BaselinePolicy)),
        ("worksharing", Box::new(WorkSharingPolicy)),
        (
            "ilan",
            Box::new(IlanScheduler::new(IlanParams::for_topology(&topo))),
        ),
    ];

    println!(
        "\n{:<12} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "scheduler", "residual", "iterations", "loops", "wall(ms)", "avg thr"
    );
    for (name, policy) in policies.iter_mut() {
        let start = std::time::Instant::now();
        let result = run_native(&pool, policy.as_mut(), &matrix, iterations);
        let wall = start.elapsed();
        println!(
            "{:<12} {:>10.2e} {:>12} {:>10} {:>12.1} {:>10.1}",
            name,
            result.residual,
            result.iterations,
            result.stats.invocations,
            wall.as_secs_f64() * 1e3,
            result.stats.weighted_avg_threads(),
        );
        assert!(
            result.residual < 1e-6,
            "{name}: CG failed to converge (residual {})",
            result.residual
        );
    }
    println!("\nall schedulers converged to the same solution ✓");
}
