//! Portability study: the same workloads on three different NUMA machines.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```
//!
//! The paper notes (§3.5) that the right thread-count granularity and the
//! value of node-level scheduling depend on the platform. This example runs
//! SP and CG on the paper's dual-socket Zen 4 machine, a single-socket Rome
//! in NPS4, a dual-socket Xeon, and a hand-built asymmetric-distance
//! machine, comparing baseline vs ILAN on each.

use ilan_suite::prelude::*;
use ilan_suite::topology::{DistanceMatrix, Topology};

fn machines() -> Vec<(&'static str, Topology)> {
    // A hand-built machine: 4 nodes in a ring — neighbours close, opposite
    // corners far (distances 10 / 14 / 28).
    let ring = Topology::builder()
        .sockets(1)
        .nodes_per_socket(4)
        .cores_per_node(12)
        .cores_per_ccd(6)
        .distances(DistanceMatrix::from_rows(
            4,
            vec![
                10, 14, 28, 14, //
                14, 10, 14, 28, //
                28, 14, 10, 14, //
                14, 28, 14, 10,
            ],
        ))
        .build()
        .expect("valid custom topology");

    vec![
        ("EPYC 9354 ×2 (paper)", presets::epyc_9354_2s()),
        ("EPYC 7742 ×1 NPS4", presets::epyc_7742_1s_nps4()),
        ("Xeon 8280 ×2", presets::xeon_8280_2s()),
        ("custom 4-node ring", ring),
    ]
}

fn main() {
    println!(
        "{:<22} {:<6} {:>7} {:>12} {:>12} {:>9} {:>9}",
        "machine", "bench", "cores", "baseline(s)", "ilan(s)", "speedup", "avg thr"
    );
    for (name, topo) in machines() {
        for workload in [Workload::Sp, Workload::Cg] {
            let app = workload.sim_app(&topo, Scale::Quick);

            let mut machine = SimMachine::new(MachineParams::for_topology(&topo), 3);
            let mut baseline = BaselinePolicy;
            let base = app.run(&mut machine, &mut baseline);

            let mut machine = SimMachine::new(MachineParams::for_topology(&topo), 3);
            let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
            let opt = app.run(&mut machine, &mut ilan);

            println!(
                "{:<22} {:<6} {:>7} {:>12.4} {:>12.4} {:>8.1}% {:>9.1}",
                name,
                workload.name(),
                topo.num_cores(),
                base.wall_time_ns() * 1e-9,
                opt.wall_time_ns() * 1e-9,
                (base.wall_time_ns() / opt.wall_time_ns() - 1.0) * 100.0,
                opt.weighted_avg_threads(),
            );
        }
    }
    println!("\nILAN adapts its granularity g to each machine's NUMA node size.");
}
