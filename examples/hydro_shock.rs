//! Lagrangian shock-tube hydrodynamics (the LULESH-proxy workload).
//!
//! ```text
//! cargo run --release --example hydro_shock [zones] [steps]
//! ```
//!
//! Runs the staggered-grid Sod problem on the native runtime with ILAN
//! driving all four loop pipelines (force, velocity, position, EOS), checks
//! mass/energy conservation, and prints the shock profile — a compact
//! stand-in for the multi-loop hydro workloads the paper's introduction
//! motivates.

use ilan_suite::prelude::*;
use ilan_suite::workloads::lulesh::{step_native, HydroState};

fn main() {
    let mut args = std::env::args().skip(1);
    let zones: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);

    let topo = ilan_suite::topology::detect::detect();
    let pool = ThreadPool::new(PoolConfig::new(topo.clone())).expect("pool");
    let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
    let mut sites = SiteRegistry::new();
    let mut stats = RunStats::new();

    let mut state = HydroState::sod(zones);
    let mass0 = state.total_mass();
    let energy0 = state.total_energy();
    println!(
        "Sod shock tube: {zones} zones, {steps} steps, initial mass {mass0:.6}, energy {energy0:.6}"
    );

    let start = std::time::Instant::now();
    for step in 0..steps {
        let dt = state.cfl_dt();
        step_native(&pool, &mut ilan, &mut state, &mut sites, dt, &mut stats);
        if step % (steps / 8).max(1) == 0 {
            println!(
                "  step {step:>5}: dt={dt:.3e}  energy drift {:+.3}%",
                (state.total_energy() / energy0 - 1.0) * 100.0
            );
        }
    }
    let wall = start.elapsed();

    // Conservation checks.
    let mass_err = (state.total_mass() - mass0).abs();
    let energy_drift = (state.total_energy() / energy0 - 1.0).abs();
    println!("\nmass error:    {mass_err:.3e} (must be 0: Lagrangian mesh)");
    println!("energy drift:  {:.3}%", energy_drift * 100.0);
    assert_eq!(mass_err, 0.0, "mass must be conserved exactly");
    assert!(energy_drift < 0.08, "energy drifted too far");

    // Shock profile: density along the tube, 8 sample points.
    println!("\ndensity profile:");
    for s in 0..8 {
        let i = s * zones / 8;
        let bar = "#".repeat((state.rho[i] * 40.0) as usize);
        println!(
            "  x={:.2} ρ={:>6.3} {bar}",
            (i as f64 + 0.5) / zones as f64,
            state.rho[i]
        );
    }

    println!(
        "\n{} taskloop invocations in {:.1}ms, avg threads {:.1}",
        stats.invocations,
        wall.as_secs_f64() * 1e3,
        stats.weighted_avg_threads()
    );
}
