//! Trace ILAN's configuration search over every paper benchmark.
//!
//! ```text
//! cargo run --release --example moldability_trace [bench ...]
//! ```
//!
//! For each benchmark (on the simulated EPYC 9354), prints the decision ILAN
//! takes at each of the first invocations of the dominant taskloop site —
//! the priming runs, the binary-search exploration of Algorithm 1, the
//! steal-policy trial, and the settled configuration. This is Figure 1 of
//! the paper come to life.

use ilan_suite::prelude::*;

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let topo = presets::epyc_9354_2s();

    for workload in ALL_WORKLOADS {
        if !names.is_empty()
            && !names
                .iter()
                .any(|n| n.eq_ignore_ascii_case(workload.name()))
        {
            continue;
        }
        let app = workload.sim_app(&topo, Scale::Quick);
        // Trace the heaviest site (most total ideal work).
        let (dominant, site_spec) = app
            .sites
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let wa: f64 = a.tasks.iter().map(|t| t.ideal_ns(22.0)).sum();
                let wb: f64 = b.tasks.iter().map(|t| t.ideal_ns(22.0)).sum();
                wa.partial_cmp(&wb).unwrap()
            })
            .expect("app has sites");
        println!(
            "\n=== {} — site `{}` ({} chunks) ===",
            workload.name(),
            site_spec.name,
            site_spec.tasks.len()
        );

        let mut machine = SimMachine::new(MachineParams::for_topology(&topo), 7);
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        let site = SiteId::new(dominant as u64);
        let mut last_threads = 0;
        for k in 1..=14 {
            let (decision, report) =
                run_sim_invocation(&mut machine, &mut ilan, site, &site_spec.tasks);
            let threads = decision.threads().unwrap_or(64);
            // Phase *after* the invocation was recorded.
            let phase = format!("{:?}", ilan.phase(site));
            println!(
                "  k={k:>2} threads={threads:<3} steal={:<6} mask={:<22} time={:>8.2}ms → {phase}",
                format!("{:?}", decision.steal().unwrap_or(StealPolicy::Strict)),
                format!("{:?}", decision.mask().unwrap_or(topo.all_nodes())),
                report.time_ns / 1e6
            );
            if ilan.settled_decision(site).is_some() && threads == last_threads && k > 6 {
                println!("  … settled");
                break;
            }
            last_threads = threads;
        }
    }
}
