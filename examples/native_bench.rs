//! The paper's experiment, natively, at laptop scale.
//!
//! ```text
//! cargo run --release --example native_bench [--laptop]
//! ```
//!
//! Runs all seven benchmarks with real math on this machine's cores under
//! the three schedulers and prints wall time, verification status and
//! scheduler statistics. On a non-NUMA machine the schedulers mostly tie —
//! the value here is that the *complete* evaluation pipeline runs natively,
//! numerics verified, on whatever hardware you have.

use ilan_suite::prelude::*;
use ilan_suite::workloads::{run_native_app, NativeScale};

fn main() {
    let laptop = std::env::args().any(|a| a == "--laptop");
    let scale = if laptop {
        NativeScale::laptop()
    } else {
        NativeScale::quick()
    };

    let topo = ilan_suite::topology::detect::detect();
    println!("machine: {}", topo.summary());
    println!("scale:   {scale:?}\n");
    let pool = ThreadPool::new(PoolConfig::new(topo.clone())).expect("pool");

    println!(
        "{:<8} {:<12} {:>10} {:>10} {:>9} {:>10} {:>9}",
        "bench", "scheduler", "wall(ms)", "loops", "avg thr", "check", "ok"
    );
    for workload in ALL_WORKLOADS {
        let mut policies: Vec<(&str, Box<dyn Policy>)> = vec![
            ("baseline", Box::new(BaselinePolicy)),
            ("worksharing", Box::new(WorkSharingPolicy)),
            (
                "ilan",
                Box::new(IlanScheduler::new(IlanParams::for_topology(&topo))),
            ),
        ];
        for (name, policy) in policies.iter_mut() {
            let summary = run_native_app(workload, &pool, policy.as_mut(), scale);
            println!(
                "{:<8} {:<12} {:>10.1} {:>10} {:>9.1} {:>10.1e} {:>9}",
                workload.name(),
                name,
                summary.wall.as_secs_f64() * 1e3,
                summary.stats.invocations,
                summary.stats.weighted_avg_threads(),
                summary.check,
                if summary.verified() {
                    "✓"
                } else {
                    "✗ FAILED"
                },
            );
            assert!(
                summary.verified(),
                "{} failed verification",
                workload.name()
            );
        }
    }
    println!("\nall benchmarks verified under every scheduler ✓");
}
