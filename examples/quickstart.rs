//! Quickstart: run a taskloop under the ILAN scheduler, natively and in
//! simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Part 1 executes a real parallel loop on this machine through the native
//! work-stealing runtime, letting ILAN pick the configuration per
//! invocation. Part 2 simulates the paper's 64-core EPYC 9354 and shows the
//! moldability search converging on a bandwidth-saturated loop.

use ilan_suite::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    native_part();
    simulated_part();
}

/// A real taskloop on the current machine: sum of square roots.
fn native_part() {
    println!("== native runtime ==");
    // Model this machine (flat SMP if no NUMA is visible).
    let topo = ilan_suite::topology::detect::detect();
    println!("detected: {}", topo.summary());

    let pool = ThreadPool::new(PoolConfig::new(topo.clone())).expect("pool");
    let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
    let mut sites = SiteRegistry::new();
    let site = sites.site("quickstart/sqrt-sum");

    let n = 4_000_000usize;
    for iteration in 0..6 {
        let sum_bits = AtomicU64::new(0f64.to_bits());
        let (decision, report) =
            run_native_invocation(&pool, &mut ilan, site, 0..n, n / 256, |range| {
                let partial: f64 = range.map(|i| (i as f64).sqrt()).sum();
                // Atomic f64 accumulation.
                let mut cur = sum_bits.load(Ordering::Relaxed);
                loop {
                    let new = f64::from_bits(cur) + partial;
                    match sum_bits.compare_exchange_weak(
                        cur,
                        new.to_bits(),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(c) => cur = c,
                    }
                }
            });
        println!(
            "  iter {iteration}: threads={:<3} time={:>8.3}ms locality={:.2} sum={:.1}",
            decision.threads().unwrap_or(0),
            report.time_ns / 1e6,
            report.locality,
            f64::from_bits(sum_bits.load(Ordering::Acquire)),
        );
    }
}

/// The paper's machine in simulation: watch moldability converge.
fn simulated_part() {
    println!("\n== simulated EPYC 9354 (8 NUMA nodes × 8 cores) ==");
    let topo = presets::epyc_9354_2s();
    print!("{}", ilan_suite::topology::render_tree(&topo));
    let mut machine = SimMachine::new(MachineParams::for_topology(&topo), 42);
    let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
    let site = SiteId::new(0);

    // A bandwidth-saturated loop (CG-like): 256 chunks, mostly memory.
    let tasks: Vec<TaskSpec> = (0..256)
        .map(|i| TaskSpec {
            compute_ns: 40_000.0,
            mem_bytes: 3_500_000.0,
            home_node: NodeId::new(i * 8 / 256),
            locality: Locality::Scattered { spread: 1.0 },
            data_mask: topo.all_nodes(),
            cache_reuse: 0.0,
            fits_l3: false,
        })
        .collect();

    for k in 1..=10 {
        let (decision, report) = run_sim_invocation(&mut machine, &mut ilan, site, &tasks);
        println!(
            "  invocation {k:>2}: threads={:<3} mask={:?} steal={:?} time={:>7.2}ms",
            decision.threads().unwrap_or(64),
            decision.mask().unwrap_or(topo.all_nodes()),
            decision.steal().unwrap_or(StealPolicy::Strict),
            report.time_ns / 1e6,
        );
    }
    println!(
        "  settled: {:?}",
        ilan.settled_decision(site).map(|d| d.threads())
    );
}
