//! Execution timelines: watch where chunks actually run.
//!
//! ```text
//! cargo run --release --example timeline
//! ```
//!
//! Simulates one imbalanced taskloop on a small two-node machine under the
//! three execution shapes and renders a per-core Gantt chart of each. The
//! contrast makes the schedulers' behaviour tangible: static slices strand
//! cores behind stragglers, the flat baseline balances but scatters chunks
//! across nodes, and the hierarchical plan keeps chunks home while stealing
//! fills the tail.

use ilan_suite::prelude::*;
use ilan_suite::scheduler::driver::{active_cores, build_plan};

fn main() {
    let topo = presets::tiny_2x4();
    println!("{}", ilan_suite::topology::render_tree(&topo));

    // 24 chunks, node-blocked data, with two heavy stragglers.
    let tasks: Vec<TaskSpec> = (0..24)
        .map(|i| TaskSpec {
            compute_ns: if i % 11 == 3 { 900_000.0 } else { 160_000.0 },
            mem_bytes: 600_000.0,
            home_node: NodeId::new(i / 12),
            locality: Locality::Chunked,
            data_mask: topo.all_nodes(),
            cache_reuse: 0.25,
            fits_l3: true,
        })
        .collect();
    let cores = topo.cpuset_of_mask(topo.all_nodes());

    let hier = Decision::Hierarchical {
        threads: 8,
        mask: topo.all_nodes(),
        steal: StealPolicy::Full,
        strict_fraction: 0.5,
    };
    let shapes = [
        ("static work-sharing", PlacementPlan::Static),
        ("flat work-stealing (baseline)", PlacementPlan::Flat),
        (
            "hierarchical + full stealing (ILAN)",
            build_plan(&hier, tasks.len()),
        ),
    ];

    for (name, plan) in shapes {
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 7);
        let active = match &plan {
            PlacementPlan::Hierarchical { .. } => active_cores(&topo, topo.all_nodes(), 8),
            _ => cores.clone(),
        };
        let out = machine.run_taskloop_traced(&active, &plan, &tasks);
        println!(
            "== {name} ==  makespan {:.2}ms, locality {:.2}, migrations {}",
            out.makespan_ns / 1e6,
            out.locality_fraction(),
            out.migrations
        );
        print!("{}", out.gantt(64));
        println!();
    }
    println!("(letters = chunks a–x; cores 0–3 are NUMA node 0, 4–7 node 1)");
}
