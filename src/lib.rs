//! **ilan-suite** — umbrella crate for the ILAN NUMA scheduler reproduction.
//!
//! This crate re-exports the whole workspace so examples and downstream
//! users need a single dependency:
//!
//! * [`topology`] — hardware model: sockets → NUMA nodes → CCDs → cores,
//!   distance matrices, node masks ([`ilan_topology`]).
//! * [`sim`] — the deterministic fluid-rate NUMA machine simulator
//!   ([`ilan_numasim`]).
//! * [`runtime`] — the native work-stealing task runtime with hierarchical
//!   NUMA scheduling ([`ilan_runtime`]).
//! * [`scheduler`] — the ILAN policy itself: Performance Trace Table,
//!   Algorithm-1 moldability search, node-mask selection, steal-policy trial
//!   ([`ilan`]).
//! * [`workloads`] — the seven evaluation benchmarks in native and simulated
//!   form ([`ilan_workloads`]).
//! * [`trace`] — the scheduler event-tracing layer: per-worker lock-free
//!   rings, invariant auditor, Chrome-trace exporter ([`ilan_trace`]).
//!
//! # Quickstart
//!
//! ```
//! use ilan_suite::prelude::*;
//!
//! // Simulate the paper's 64-core EPYC 9354 machine.
//! let topo = presets::epyc_9354_2s();
//! let mut machine = SimMachine::new(MachineParams::for_topology(&topo), 1);
//!
//! // Run the CG benchmark under the ILAN scheduler.
//! let app = Workload::Cg.sim_app(&topo, Scale::Quick);
//! let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
//! let stats = app.run(&mut machine, &mut ilan);
//!
//! assert!(stats.total_time_ns > 0.0);
//! // CG molds: ILAN settles well below the 64 available cores.
//! assert!(stats.weighted_avg_threads() < 60.0);
//! ```

pub use ilan as scheduler;
pub use ilan_numasim as sim;
pub use ilan_runtime as runtime;
pub use ilan_topology as topology;
pub use ilan_trace as trace;
pub use ilan_workloads as workloads;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use ilan::driver::{run_native_invocation, run_sim_invocation};
    pub use ilan::{
        BaselinePolicy, Decision, FixedPolicy, IlanParams, IlanScheduler, Policy, RunStats, SiteId,
        SiteRegistry, StealPolicy, TaskloopReport, WorkSharingPolicy,
    };
    pub use ilan_numasim::{
        Locality, LoopOutcome, MachineParams, NoiseParams, PlacementPlan, SimMachine, TaskSpec,
    };
    pub use ilan_runtime::{ExecMode, LoopReport, PinMode, PoolConfig, ThreadPool};
    pub use ilan_topology::{presets, CoreId, CpuSet, NodeId, NodeMask, Topology};
    pub use ilan_trace::{audit, AuditExpect, AuditReport, Event, EventKind, EventLog, NodeTally};
    pub use ilan_workloads::{Scale, SimApp, Workload, ALL_WORKLOADS};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_links_all_crates() {
        let topo = presets::tiny_2x4();
        let _machine = SimMachine::new(MachineParams::for_topology(&topo), 0);
        let _pool = ThreadPool::new(PoolConfig::new(presets::smp(2)).pin(PinMode::Never));
        let _policy = IlanScheduler::new(IlanParams::for_topology(&topo));
        assert_eq!(ALL_WORKLOADS.len(), 7);
    }
}
