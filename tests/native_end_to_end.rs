//! End-to-end tests of the native kernels under every scheduling policy.
//!
//! These are the functional-correctness leg of the reproduction: whatever
//! configuration the scheduler picks, the numerics must be identical. Each
//! kernel runs on a small oversubscribed pool (the suite must pass on any
//! machine, including single-core CI).

use ilan_suite::prelude::*;
use ilan_suite::workloads::{bt, cg, ft, lu, lulesh, matmul};

fn pool() -> ThreadPool {
    ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).expect("pool")
}

fn policies(topo: &Topology) -> Vec<(&'static str, Box<dyn Policy>)> {
    vec![
        ("baseline", Box::new(BaselinePolicy)),
        ("worksharing", Box::new(WorkSharingPolicy)),
        (
            "ilan",
            Box::new(IlanScheduler::new(IlanParams::for_topology(topo))),
        ),
        (
            "ilan-nomold",
            Box::new(IlanScheduler::new(IlanParams::no_moldability(topo))),
        ),
    ]
}

#[test]
fn cg_converges_under_every_policy() {
    let pool = pool();
    let matrix = cg::Csr::poisson_irregular(20, 2, 5);
    for (name, mut policy) in policies(pool.topology()) {
        let result = cg::run_native(&pool, policy.as_mut(), &matrix, 150);
        assert!(
            result.residual < 1e-8,
            "{name}: residual {}",
            result.residual
        );
    }
}

#[test]
fn fft_roundtrips_under_every_policy() {
    let pool = pool();
    for (name, mut policy) in policies(pool.topology()) {
        let mut grid = ft::FtGrid::new(32);
        let original = grid.re.clone();
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        ft::fft2d_native(
            &pool,
            policy.as_mut(),
            &mut grid,
            &mut sites,
            false,
            &mut stats,
        );
        ft::fft2d_native(
            &pool,
            policy.as_mut(),
            &mut grid,
            &mut sites,
            true,
            &mut stats,
        );
        let err = ilan_suite::workloads::verify::max_abs_diff(&grid.re, &original);
        assert!(err < 1e-9, "{name}: roundtrip error {err}");
    }
}

#[test]
fn bt_matches_serial_under_every_policy() {
    let pool = pool();
    for (name, mut policy) in policies(pool.topology()) {
        let mut parallel = bt::BtGrid::new(10);
        let mut serial = bt::BtGrid::new(10);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        for _ in 0..2 {
            bt::step_native(
                &pool,
                policy.as_mut(),
                &mut parallel,
                &mut sites,
                &mut stats,
            );
            serial.step_serial();
        }
        let err = ilan_suite::workloads::verify::max_abs_diff(&parallel.u, &serial.u);
        assert!(err < 1e-12, "{name}: diverged by {err}");
    }
}

#[test]
fn sp_matches_serial_under_every_policy() {
    let pool = pool();
    for (name, mut policy) in policies(pool.topology()) {
        let mut parallel = ilan_suite::workloads::sp::SpGrid::new(8);
        let mut serial = ilan_suite::workloads::sp::SpGrid::new(8);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        for _ in 0..2 {
            ilan_suite::workloads::sp::step_native(
                &pool,
                policy.as_mut(),
                &mut parallel,
                &mut sites,
                &mut stats,
            );
            serial.step_serial();
        }
        let err = ilan_suite::workloads::verify::max_abs_diff(&parallel.u, &serial.u);
        assert!(err < 1e-11, "{name}: diverged by {err}");
    }
}

#[test]
fn lu_wavefront_is_bit_identical_under_every_policy() {
    let pool = pool();
    for (name, mut policy) in policies(pool.topology()) {
        let mut parallel = lu::LuGrid::new(20);
        let mut serial = lu::LuGrid::new(20);
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        for _ in 0..3 {
            lu::sweep_native(
                &pool,
                policy.as_mut(),
                &mut parallel,
                &mut sites,
                &mut stats,
            );
            serial.sweep_serial();
        }
        assert_eq!(parallel.u, serial.u, "{name}: wavefront order violated");
    }
}

#[test]
fn hydro_conserves_mass_under_every_policy() {
    let pool = pool();
    for (name, mut policy) in policies(pool.topology()) {
        let mut state = lulesh::HydroState::sod(200);
        let mass0 = state.total_mass();
        let e0 = state.total_energy();
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        for _ in 0..30 {
            let dt = state.cfl_dt();
            lulesh::step_native(
                &pool,
                policy.as_mut(),
                &mut state,
                &mut sites,
                dt,
                &mut stats,
            );
        }
        assert_eq!(state.total_mass(), mass0, "{name}: mass drifted");
        let drift = (state.total_energy() / e0 - 1.0).abs();
        assert!(drift < 0.05, "{name}: energy drift {drift}");
    }
}

#[test]
fn matmul_matches_reference_under_every_policy() {
    let pool = pool();
    let a = matmul::Matrix::random(40, 11);
    let b = matmul::Matrix::random(40, 12);
    let reference = a.mul_serial(&b);
    for (name, mut policy) in policies(pool.topology()) {
        let mut sites = SiteRegistry::new();
        let mut stats = RunStats::new();
        for _ in 0..5 {
            let c = matmul::mul_native(&pool, policy.as_mut(), &a, &b, &mut sites, &mut stats);
            let err = ilan_suite::workloads::verify::max_abs_diff(&c.data, &reference.data);
            assert!(err < 1e-12, "{name}: wrong product, err {err}");
        }
    }
}

#[test]
fn ilan_settles_on_repeated_native_sites() {
    // Drive one site through its full lifecycle on the native runtime and
    // check the PTT recorded every invocation.
    let pool = pool();
    let topo = pool.topology().clone();
    let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
    let site = SiteId::new(0);
    for _ in 0..8 {
        run_native_invocation(&pool, &mut ilan, site, 0..5_000, 100, |r| {
            std::hint::black_box(r.map(|i| i as f64).sum::<f64>());
        });
    }
    assert_eq!(ilan.ptt().invocations(site), 8);
    assert!(
        ilan.settled_decision(site).is_some(),
        "8 invocations must settle a 2-node machine"
    );
}
