//! End-to-end behaviour of the optimization objectives on the simulated
//! machine (the §3.5 energy-efficiency extension).

use ilan_suite::prelude::*;
use ilan_suite::scheduler::Objective;

/// Runs CG under an ILAN scheduler configured with `objective`, returning
/// (weighted average threads, wall seconds, core-seconds energy proxy).
fn run_cg_with(objective: Objective) -> (f64, f64, f64) {
    let topo = presets::epyc_9354_2s();
    let app = Workload::Cg.sim_app(&topo, Scale::Quick);
    let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 5);
    let mut ilan = IlanScheduler::new(
        ilan_suite::scheduler::IlanParams::for_topology(&topo).objective(objective),
    );
    let stats = app.run(&mut machine, &mut ilan);
    let wall = stats.wall_time_ns() * 1e-9;
    let energy = stats.weighted_avg_threads() * stats.total_time_ns * 1e-9;
    (stats.weighted_avg_threads(), wall, energy)
}

#[test]
fn energy_objective_trades_time_for_core_seconds() {
    let (threads_t, wall_t, energy_t) = run_cg_with(Objective::Time);
    let (threads_e, wall_e, energy_e) = run_cg_with(Objective::Energy);

    // The energy objective must use at most as many cores…
    assert!(
        threads_e <= threads_t + 1e-9,
        "energy used more cores: {threads_e} vs {threads_t}"
    );
    // …spend fewer core-seconds…
    assert!(
        energy_e < energy_t,
        "energy proxy did not improve: {energy_e} vs {energy_t}"
    );
    // …at a wall-time cost that stays bounded (the energy optimum for a
    // saturated loop sits near the granularity floor, so a 2–3× slowdown
    // for a ~2× core-seconds saving is the expected shape of the trade).
    assert!(
        wall_e < wall_t * 4.0,
        "energy objective unreasonably slow: {wall_e}s vs {wall_t}s"
    );
}

#[test]
fn edp_sits_between_time_and_energy() {
    let (threads_t, ..) = run_cg_with(Objective::Time);
    let (threads_d, ..) = run_cg_with(Objective::EnergyDelay);
    let (threads_e, ..) = run_cg_with(Objective::Energy);
    assert!(
        threads_e <= threads_d + 1e-9 && threads_d <= threads_t + 1e-9,
        "expected threads(E) ≤ threads(EDP) ≤ threads(T): \
         {threads_e} / {threads_d} / {threads_t}"
    );
}

#[test]
fn compute_bound_loops_are_objective_insensitive() {
    // Matmul scales linearly, so all objectives keep the machine.
    let topo = presets::epyc_9354_2s();
    for objective in [Objective::Time, Objective::Energy, Objective::EnergyDelay] {
        let app = Workload::Matmul.sim_app(&topo, Scale::Quick);
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 5);
        let mut ilan = IlanScheduler::new(
            ilan_suite::scheduler::IlanParams::for_topology(&topo).objective(objective),
        );
        let stats = app.run(&mut machine, &mut ilan);
        assert!(
            stats.weighted_avg_threads() > 56.0,
            "{objective:?} molded a compute-bound loop: {}",
            stats.weighted_avg_threads()
        );
    }
}
