//! Property-based tests over the whole stack.

use ilan_suite::prelude::*;
use ilan_suite::trace::{EventRing, Recorder, DISPATCHER};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Decodes an arbitrary `(tag, a, b)` triple into an event kind, covering
/// every variant.
fn kind_from(tag: u8, a: u32, b: u32) -> EventKind {
    match tag % 8 {
        0 => EventKind::ChunkEnqueue {
            chunk: a,
            home: b % 64,
            strict: a.is_multiple_of(2),
        },
        1 => EventKind::LocalPop { chunk: a },
        2 => EventKind::IntraNodeSteal {
            chunk: a,
            victim: b,
        },
        3 => EventKind::InterNodeSteal {
            chunk: a,
            from: b % 64,
        },
        4 => EventKind::ChunkStart { chunk: a },
        5 => EventKind::ChunkEnd { chunk: a },
        6 => EventKind::LatchRelease,
        _ => EventKind::ExplorationDecision {
            site: a as u64,
            threads: b,
        },
    }
}

/// A minimal strict JSON syntax checker (no external deps): returns an error
/// with the byte offset of the first malformed construct.
mod minijson {
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        skip_ws(b, &mut i);
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(())
        } else {
            Err(format!("expected {word} at {i}", i = *i))
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at {i}", i = *i));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                0x00..=0x1f => return Err(format!("raw control char at {i}", i = *i)),
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
        }
        if matches!(b.get(*i), Some(b'e' | b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+' | b'-')) {
                *i += 1;
            }
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
        }
        if *i == start || b[start..*i] == [b'-'] {
            Err(format!("bad number at {start}"))
        } else {
            Ok(())
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected : at {i}", i = *i));
                    }
                    *i += 1;
                    skip_ws(b, i);
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("malformed object at {i}", i = *i)),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("malformed array at {i}", i = *i)),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => lit(b, i, "true"),
            Some(b'f') => lit(b, i, "false"),
            Some(b'n') => lit(b, i, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            _ => Err(format!("expected value at {i}", i = *i)),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(validate("{\"a\":[1,2.5,-3e4,true,null,\"x\"]}").is_ok());
        for bad in ["{", "[1,]", "{\"a\"}", "nul", "1..2", "\"\\", "{}{}"] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Node-mask algebra: union/intersection/difference behave as sets.
    #[test]
    fn nodemask_set_laws(a in 0u64.., b in 0u64..) {
        let (ma, mb) = (NodeMask::from_bits(a), NodeMask::from_bits(b));
        prop_assert_eq!(ma.union(mb).bits(), a | b);
        prop_assert_eq!(ma.intersection(mb).bits(), a & b);
        prop_assert_eq!(ma.difference(mb).bits(), a & !b);
        prop_assert!(ma.intersection(mb).is_subset(ma));
        prop_assert!(ma.is_subset(ma.union(mb)));
        prop_assert_eq!(
            ma.count() + mb.count(),
            ma.union(mb).count() + ma.intersection(mb).count()
        );
    }

    /// rank_of and nth are mutually inverse for every mask.
    #[test]
    fn nodemask_rank_nth_inverse(bits in 0u64..) {
        let m = NodeMask::from_bits(bits);
        for (rank, node) in m.iter().enumerate() {
            prop_assert_eq!(m.rank_of(node), Some(rank));
            prop_assert_eq!(m.nth(rank), Some(node));
        }
        prop_assert_eq!(m.nth(m.count()), None);
    }

    /// Chunking covers an arbitrary range exactly once.
    #[test]
    fn chunking_partitions_exactly(
        start in 0usize..10_000,
        len in 0usize..5_000,
        grain in 1usize..600,
    ) {
        let chunks = ilan_suite::runtime::chunk_ranges(start..start + len, grain);
        let mut covered = 0usize;
        let mut expected_next = start;
        for c in &chunks {
            prop_assert_eq!(c.start, expected_next, "chunks must be contiguous");
            prop_assert!(c.len() <= grain);
            prop_assert!(!c.is_empty());
            covered += c.len();
            expected_next = c.end;
        }
        prop_assert_eq!(covered, len);
    }

    /// The blocked chunk→node assignment is monotone (adjacent chunks stay
    /// together) and balanced within one chunk per node.
    #[test]
    fn chunk_assignment_monotone_and_balanced(
        mask_bits in 1u64..(1 << 8),
        chunks in 1usize..400,
    ) {
        let mask = NodeMask::from_bits(mask_bits);
        let a = ilan_suite::runtime::ChunkAssignment::new(mask, chunks);
        let mut counts = vec![0usize; 64];
        let mut last_rank = 0usize;
        for i in 0..chunks {
            let node = a.node_of_chunk(i);
            prop_assert!(mask.contains(node));
            let rank = mask.rank_of(node).unwrap();
            prop_assert!(rank >= last_rank, "assignment must be monotone");
            last_rank = rank;
            counts[node.index()] += 1;
        }
        let nonzero: Vec<usize> =
            counts.iter().copied().filter(|&c| c > 0).collect();
        if chunks >= mask.count() {
            prop_assert_eq!(nonzero.len(), mask.count());
            let max = nonzero.iter().max().unwrap();
            let min = nonzero.iter().min().unwrap();
            prop_assert!(max - min <= 1, "imbalance {max}-{min}");
        }
    }

    /// Any topology the builder accepts produces consistent core↔node↔socket
    /// mappings.
    #[test]
    fn topology_mappings_consistent(
        sockets in 1usize..4,
        nodes_per_socket in 1usize..5,
        cores_per_node in 1usize..9,
    ) {
        let topo = Topology::builder()
            .sockets(sockets)
            .nodes_per_socket(nodes_per_socket)
            .cores_per_node(cores_per_node)
            .build()
            .unwrap();
        for c in 0..topo.num_cores() {
            let core = CoreId::new(c);
            let node = topo.node_of_core(core);
            prop_assert!(topo.cores_of_node(node).any(|x| x == core));
            prop_assert_eq!(topo.socket_of_core(core), topo.socket_of_node(node));
        }
        let all: usize = (0..topo.num_nodes())
            .map(|n| topo.cores_of_node(NodeId::new(n)).count())
            .sum();
        prop_assert_eq!(all, topo.num_cores());
    }

    /// grow_mask always returns the requested size (clamped), contains its
    /// seed, and prefers the seed's socket.
    #[test]
    fn grow_mask_properties(seed in 0usize..8, want in 0usize..12) {
        let topo = presets::epyc_9354_2s();
        let seed = NodeId::new(seed);
        let mask = topo.grow_mask(seed, want);
        prop_assert!(mask.contains(seed));
        prop_assert_eq!(mask.count(), want.clamp(1, 8));
        if mask.count() <= 4 {
            for n in mask.iter() {
                prop_assert_eq!(topo.socket_of_node(n), topo.socket_of_node(seed));
            }
        }
    }

    /// The simulator executes every chunk exactly once for arbitrary chunk
    /// counts, thread counts and strict fractions.
    #[test]
    fn sim_executes_all_chunks(
        chunks in 1usize..120,
        threads in 1usize..9,
        strict_pct in 0usize..=100,
    ) {
        let topo = presets::tiny_2x4();
        let tasks: Vec<TaskSpec> = (0..chunks)
            .map(|i| TaskSpec {
                compute_ns: 1_000.0 + (i % 7) as f64 * 500.0,
                mem_bytes: 20_000.0,
                home_node: NodeId::new(i * 2 / chunks),
                locality: Locality::Chunked,
                data_mask: topo.all_nodes(),
                cache_reuse: 0.2,
                fits_l3: true,
            })
            .collect();
        let decision = Decision::Hierarchical {
            threads,
            mask: topo.all_nodes(),
            steal: StealPolicy::Full,
            strict_fraction: strict_pct as f64 / 100.0,
        };
        let cores = ilan_suite::scheduler::driver::active_cores(
            &topo, topo.all_nodes(), threads.max(2));
        let plan = ilan_suite::scheduler::driver::build_plan(&decision, chunks);
        let mut machine =
            SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 0);
        let out = machine.run_taskloop(&cores, &plan, &tasks);
        prop_assert_eq!(out.tasks_executed(), chunks);
        prop_assert!(out.makespan_ns.is_finite() && out.makespan_ns > 0.0);
        prop_assert!(out.total_busy_ns() <= cores.count() as f64 * out.makespan_ns + 1e-3);
    }

    /// The native runtime executes every iteration exactly once for random
    /// loop shapes and modes.
    #[test]
    fn native_executes_all_iterations(
        n in 1usize..2_000,
        grain in 1usize..200,
        mode_pick in 0usize..3,
    ) {
        let pool = ThreadPool::new(
            PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never),
        ).unwrap();
        let mode = match mode_pick {
            0 => ExecMode::Flat,
            1 => ExecMode::WorkSharing,
            _ => ExecMode::Hierarchical {
                mask: pool.topology().all_nodes(),
                threads: 0,
                strict_fraction: 0.5,
                policy: StealPolicy::Full,
            },
        };
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.taskloop(0..n, grain, mode, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// ILAN's decisions are always executable: threads within machine size
    /// and a multiple of g during search, mask non-empty and sized to hold
    /// the threads.
    #[test]
    fn ilan_decisions_always_valid(times in proptest::collection::vec(1_000.0f64..1e9, 8..14)) {
        let topo = presets::epyc_9354_2s();
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        let site = SiteId::new(0);
        for t in times {
            let d = ilan.decide(site);
            let Decision::Hierarchical { threads, mask, .. } = &d else {
                prop_assert!(false, "ILAN must always be hierarchical");
                return Ok(());
            };
            prop_assert!(*threads >= 1 && *threads <= 64);
            prop_assert_eq!(threads % 8, 0, "g-granularity violated");
            prop_assert!(!mask.is_empty());
            prop_assert!(mask.count() * topo.cores_per_node() >= *threads);
            let report = TaskloopReport::synthetic(t, *threads);
            ilan.record(site, &d, &report);
        }
    }

    /// The search always terminates: by invocation 12 every site is settled,
    /// no matter what times the machine reports.
    #[test]
    fn search_always_settles(times in proptest::collection::vec(1.0f64..1e6, 12)) {
        let topo = presets::epyc_9354_2s();
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        let site = SiteId::new(3);
        for t in &times {
            let d = ilan.decide(site);
            ilan.record(site, &d, &TaskloopReport::synthetic(*t, d.threads().unwrap()));
        }
        prop_assert!(
            ilan.settled_decision(site).is_some(),
            "still unsettled after 12 invocations"
        );
    }

    /// The bounded event ring keeps every event up to its capacity and
    /// drops newest beyond it — never losing, reordering or corrupting the
    /// committed prefix, with gap-free sequence numbers.
    #[test]
    fn ring_round_trips_without_loss_or_reorder(
        events in proptest::collection::vec((0u8..8, 0u32..512, 0u32..64), 0..400),
        cap in 1usize..200,
    ) {
        let ring = EventRing::with_capacity(cap);
        let pushed: Vec<EventKind> = events
            .iter()
            .map(|&(tag, a, b)| kind_from(tag, a, b))
            .collect();
        for (i, kind) in pushed.iter().enumerate() {
            ring.push(3, (i % 4) as u32, i as u64 * 7, *kind);
        }
        let kept = ring.snapshot();
        prop_assert_eq!(kept.len(), pushed.len().min(cap));
        prop_assert_eq!(ring.dropped(), pushed.len().saturating_sub(cap));
        for (i, e) in kept.iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64, "sequence gap");
            prop_assert_eq!(e.worker, 3);
            prop_assert_eq!(e.time_ns, i as u64 * 7);
            prop_assert_eq!(e.kind, pushed[i], "event corrupted in slot {i}");
        }
    }

    /// The Chrome-trace exporter emits syntactically valid JSON for
    /// arbitrary event logs — including unpaired starts/ends and events
    /// from the dispatcher pseudo-worker.
    #[test]
    fn chrome_export_is_valid_json_for_arbitrary_logs(
        events in proptest::collection::vec(
            (0u8..8, 0u32..512, 0u32..64, 0u32..9, 0u64..1 << 40),
            0..300,
        ),
    ) {
        let mut rec = Recorder::new();
        for &(tag, a, b, w, t) in &events {
            let worker = if w == 8 { DISPATCHER } else { w };
            rec.push(worker, b % 8, t, kind_from(tag, a, b));
        }
        let log = rec.into_log(8, 8);
        let json = log.chrome_trace_json();
        prop_assert!(json.contains("\"traceEvents\""));
        if let Err(e) = minijson::validate(&json) {
            prop_assert!(false, "invalid chrome JSON ({e}):\n{json}");
        }
    }
}

/// A real traced native run exports valid Chrome JSON with one complete
/// (`"X"`) slice per executed chunk.
#[test]
fn native_chrome_export_is_valid_and_complete() {
    let pool = ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
    let (report, log) = pool.taskloop_traced(
        0..300,
        7,
        ExecMode::Hierarchical {
            mask: pool.topology().all_nodes(),
            threads: 0,
            strict_fraction: 0.5,
            policy: StealPolicy::Full,
        },
        |r| {
            std::hint::black_box(r.sum::<usize>());
        },
    );
    let json = log.chrome_trace_json();
    minijson::validate(&json).expect("valid JSON");
    let slices = json.matches("\"ph\":\"X\"").count();
    assert_eq!(slices, report.tasks_executed());
    assert!(json.contains("\"displayTimeUnit\""));
}
