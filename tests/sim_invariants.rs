//! Cross-crate invariants of the simulated evaluation pipeline.

use ilan_suite::prelude::*;

/// Full application runs are exactly reproducible from the machine seed.
#[test]
fn full_runs_are_deterministic_per_seed() {
    let topo = presets::epyc_9354_2s();
    let app = Workload::Bt.sim_app(&topo, Scale::Quick);
    let mut small = app.clone();
    small.steps = 3;

    let run = |seed: u64| {
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo), seed);
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        small.run(&mut machine, &mut ilan).wall_time_ns()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

/// Every invocation executes exactly the app's chunk count, whatever the
/// policy decides.
#[test]
fn every_chunk_executes_under_every_policy() {
    let topo = presets::epyc_9354_2s();
    let app = Workload::Lulesh.sim_app(&topo, Scale::Quick);
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(BaselinePolicy),
        Box::new(WorkSharingPolicy),
        Box::new(IlanScheduler::new(IlanParams::for_topology(&topo))),
    ];
    for policy in policies.iter_mut() {
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo), 1);
        for (idx, site) in app.sites.iter().enumerate() {
            for _ in 0..3 {
                let (_, report) = run_sim_invocation(
                    &mut machine,
                    policy.as_mut(),
                    SiteId::new(idx as u64),
                    &site.tasks,
                );
                assert!(report.time_ns > 0.0);
            }
        }
    }
}

/// The moldability headline: on the simulated paper machine, CG and SP
/// reduce their thread counts while the compute-bound benchmarks keep all
/// 64 cores (paper Figure 3).
#[test]
fn moldability_molds_the_right_benchmarks() {
    let topo = presets::epyc_9354_2s();
    let run = |w: Workload| {
        let app = w.sim_app(&topo, Scale::Quick);
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 5);
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        app.run(&mut machine, &mut ilan).weighted_avg_threads()
    };
    let cg = run(Workload::Cg);
    let sp = run(Workload::Sp);
    let matmul = run(Workload::Matmul);
    let ft = run(Workload::Ft);
    assert!(cg < 52.0, "CG must mold well below 64, got {cg}");
    assert!(sp < 56.0, "SP must reduce cores, got {sp}");
    assert!(matmul > 58.0, "Matmul must keep the machine, got {matmul}");
    assert!(ft > 58.0, "FT must keep the machine, got {ft}");
}

/// ILAN never loses badly: across all seven benchmarks the worst case stays
/// within a few percent of the baseline (paper: "little-to-no performance
/// degradation in the worst case").
#[test]
fn ilan_worst_case_is_bounded() {
    let topo = presets::epyc_9354_2s();
    for w in ALL_WORKLOADS {
        let app = w.sim_app(&topo, Scale::Quick);
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 2);
        let mut base = BaselinePolicy;
        let tb = app.run(&mut machine, &mut base).wall_time_ns();
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 2);
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        let ti = app.run(&mut machine, &mut ilan).wall_time_ns();
        // Quick scale runs ~10× fewer invocations than the paper, so the
        // exploration phase weighs ~10× heavier here; 10% covers Matmul's
        // expected slight regression under that magnification.
        assert!(
            ti < tb * 1.10,
            "{}: ILAN {}s vs baseline {}s",
            w.name(),
            ti * 1e-9,
            tb * 1e-9
        );
    }
}

/// Hierarchical execution preserves locality; the flat baseline destroys it.
#[test]
fn locality_contrast_between_schedulers() {
    let topo = presets::epyc_9354_2s();
    let app = Workload::Bt.sim_app(&topo, Scale::Quick);
    let mut small = app.clone();
    small.steps = 3;

    let mut machine = SimMachine::new(MachineParams::for_topology(&topo), 3);
    let mut base = BaselinePolicy;
    let flat = small.run(&mut machine, &mut base).weighted_avg_locality();

    let mut machine = SimMachine::new(MachineParams::for_topology(&topo), 3);
    let mut nomold = IlanScheduler::new(IlanParams::no_moldability(&topo));
    let hier = small.run(&mut machine, &mut nomold).weighted_avg_locality();

    assert!(flat < 0.3, "flat locality should be ~1/8, got {flat}");
    assert!(hier > 0.9, "hierarchical locality should be ~1, got {hier}");
}

/// The steal-policy trial picks `full` when the workload is imbalanced
/// enough that inter-node stealing pays.
#[test]
fn steal_trial_responds_to_imbalance() {
    let topo = presets::epyc_9354_2s();
    let site = SiteId::new(0);
    // Severely imbalanced chunks: node-level strict placement must lose.
    let tasks: Vec<TaskSpec> = (0..256)
        .map(|i| TaskSpec {
            compute_ns: if i < 32 { 2_000_000.0 } else { 100_000.0 },
            mem_bytes: 200_000.0,
            home_node: NodeId::new(i * 8 / 256),
            locality: Locality::Chunked,
            data_mask: topo.all_nodes(),
            cache_reuse: 0.2,
            fits_l3: true,
        })
        .collect();
    let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
    let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
    for _ in 0..12 {
        run_sim_invocation(&mut machine, &mut ilan, site, &tasks);
    }
    let settled = ilan.settled_decision(site).expect("must settle in 12");
    assert_eq!(
        settled.steal(),
        Some(StealPolicy::Full),
        "imbalance this deep must enable inter-node stealing"
    );
}

/// Simulated platform study: ILAN also helps on other NUMA machines.
#[test]
fn portability_across_topologies() {
    for topo in [presets::epyc_7742_1s_nps4(), presets::xeon_8280_2s()] {
        let app = Workload::Sp.sim_app(&topo, Scale::Quick);
        let mut small = app.clone();
        small.steps = 6;
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 4);
        let mut base = BaselinePolicy;
        let tb = small.run(&mut machine, &mut base).wall_time_ns();
        let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 4);
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        let ti = small.run(&mut machine, &mut ilan).wall_time_ns();
        assert!(
            ti < tb,
            "SP on {}: ILAN {} vs baseline {}",
            topo.summary(),
            ti,
            tb
        );
    }
}
