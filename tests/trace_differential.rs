//! Differential oracle: the same taskloop shape through the native runtime
//! and the simulator, both traced, must tell the same scheduling story.
//!
//! The two backends share the blocked `ChunkAssignment` and strict-count
//! rules but nothing else — queues, clocks and steal machinery are fully
//! independent implementations. Their audited event logs must agree on
//! everything the plan determines: the chunk → node assignment (with strict
//! flags) and strict-chunk confinement. Timing-dependent facts (who stole
//! what, when) are left to the auditor's internal invariants.

use ilan_suite::prelude::*;

const RANGE: usize = 512;
const GRAIN: usize = 4; // 128 chunks on the 8-node EPYC preset

fn native_run(policy: StealPolicy, strict_fraction: f64) -> (LoopReport, EventLog) {
    let topo = presets::epyc_9354_2s();
    let pool = ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).expect("pool");
    let mode = ExecMode::Hierarchical {
        mask: topo.all_nodes(),
        threads: 0,
        strict_fraction,
        policy,
    };
    pool.taskloop_traced(0..RANGE, GRAIN, mode, |r| {
        std::hint::black_box(r.sum::<usize>());
    })
}

fn sim_run(policy: StealPolicy, strict_fraction: f64) -> LoopOutcome {
    let topo = presets::epyc_9354_2s();
    let num_chunks = RANGE / GRAIN;
    let tasks: Vec<TaskSpec> = (0..num_chunks)
        .map(|i| TaskSpec {
            compute_ns: 20_000.0,
            mem_bytes: 60_000.0,
            home_node: NodeId::new(i * topo.num_nodes() / num_chunks),
            locality: Locality::Chunked,
            data_mask: topo.all_nodes(),
            cache_reuse: 0.2,
            fits_l3: true,
        })
        .collect();
    let decision = Decision::Hierarchical {
        threads: topo.num_cores(),
        mask: topo.all_nodes(),
        steal: policy,
        strict_fraction,
    };
    let cores = ilan_suite::scheduler::driver::active_cores(&topo, topo.all_nodes(), 0);
    let plan = ilan_suite::scheduler::driver::build_plan(&decision, num_chunks);
    let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 17);
    machine.run_taskloop_traced(&cores, &plan, &tasks)
}

fn audit_native(report: &LoopReport, log: &EventLog) -> AuditReport {
    let expect = AuditExpect {
        migrations: Some(report.migrations),
        latch_releases: Some(report.threads),
        per_node: Some(
            report
                .nodes
                .iter()
                .map(|n| NodeTally {
                    tasks: n.tasks,
                    local_tasks: Some(n.local_tasks),
                })
                .collect(),
        ),
    };
    audit(log, &expect)
}

fn audit_sim(out: &LoopOutcome) -> AuditReport {
    let expect = AuditExpect {
        migrations: Some(out.migrations),
        latch_releases: Some(out.threads),
        per_node: Some(
            out.nodes
                .iter()
                .map(|n| NodeTally {
                    tasks: n.tasks,
                    local_tasks: None,
                })
                .collect(),
        ),
    };
    audit(&out.events, &expect)
}

#[test]
fn strict_runs_agree_on_assignment_and_confinement() {
    let (report, native_log) = native_run(StealPolicy::Strict, 1.0);
    let sim_out = sim_run(StealPolicy::Strict, 1.0);

    let na = audit_native(&report, &native_log);
    assert!(na.ok(), "native audit failed: {na}");
    let sa = audit_sim(&sim_out);
    assert!(sa.ok(), "sim audit failed: {sa}");

    // Identical chunk → node assignment, all chunks strict, in both logs.
    let native_assign = native_log.chunk_assignment();
    let sim_assign = sim_out.events.chunk_assignment();
    assert_eq!(native_assign.len(), RANGE / GRAIN);
    assert_eq!(native_assign, sim_assign);
    assert!(native_assign.iter().all(|&(_, _, strict)| strict));

    // Strict chunks never leave their assigned node, in either backend.
    let homes: std::collections::HashMap<u32, u32> =
        native_assign.iter().map(|&(c, h, _)| (c, h)).collect();
    for log in [&native_log, &sim_out.events] {
        for (chunk, node) in log.exec_nodes() {
            assert_eq!(node, homes[&chunk], "chunk {chunk} escaped its node");
        }
    }
    assert_eq!(report.migrations, 0);
    assert_eq!(sim_out.migrations, 0);
}

#[test]
fn full_runs_agree_on_assignment() {
    let (report, native_log) = native_run(StealPolicy::Full, 0.5);
    let sim_out = sim_run(StealPolicy::Full, 0.5);

    let na = audit_native(&report, &native_log);
    assert!(na.ok(), "native audit failed: {na}");
    let sa = audit_sim(&sim_out);
    assert!(sa.ok(), "sim audit failed: {sa}");

    // The plan side is deterministic and shared: same assignment, same
    // strict flags (here exactly half of each node's chunks).
    let native_assign = native_log.chunk_assignment();
    assert_eq!(native_assign, sim_out.events.chunk_assignment());
    let strict_chunks: Vec<u32> = native_assign
        .iter()
        .filter(|&&(_, _, s)| s)
        .map(|&(c, _, _)| c)
        .collect();
    assert_eq!(strict_chunks.len(), RANGE / GRAIN / 2);

    // Even under Full stealing, strict chunks stay home in both backends.
    let homes: std::collections::HashMap<u32, u32> =
        native_assign.iter().map(|&(c, h, _)| (c, h)).collect();
    for log in [&native_log, &sim_out.events] {
        for (chunk, node) in log.exec_nodes() {
            if strict_chunks.contains(&chunk) {
                assert_eq!(node, homes[&chunk], "strict chunk {chunk} escaped");
            }
        }
    }
}
