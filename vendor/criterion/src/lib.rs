//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! A timing harness with criterion's API shape: benchmark groups,
//! `iter`/`iter_custom`/`iter_batched`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros. It measures wall-clock
//! samples and reports min/mean/max — no outlier analysis, no HTML reports.
//! Like upstream, running a bench target without `--bench` (as `cargo test`
//! does) executes each benchmark once as a smoke test instead of measuring.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group; folded into the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the stand-in always sets up per
/// sample, so the variants only differ upstream.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh input for every iteration.
    PerIteration,
    /// Inputs batched in small groups.
    SmallInput,
    /// Inputs batched in large groups.
    LargeInput,
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    /// Full measurement when invoked with `--bench` (cargo bench); a single
    /// smoke iteration otherwise (cargo test).
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            throughput: None,
            measure: self.measure,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    measure: bool,
}

impl BenchmarkGroup {
    /// Target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark; sampling stops at the budget even if
    /// fewer samples were collected.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates per-iteration throughput, reported as elements or bytes
    /// per second next to the timing.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: if self.measure { self.sample_size } else { 1 },
            budget: if self.measure {
                self.measurement_time
            } else {
                Duration::ZERO
            },
        };
        f(&mut bencher);
        report(&label, &bencher.samples, self.throughput, self.measure);
        self
    }

    /// Ends the group. (All reporting already happened per benchmark.)
    pub fn finish(self) {}
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>, measure: bool) {
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    if !measure {
        println!("{label:<60} ok (smoke)");
        return;
    }
    let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = secs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:.3e} elem/s", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:.3e} B/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{label:<60} time: [{} {} {}]{rate}  ({} samples)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    fn sampling_done(&self, started: Instant) -> bool {
        self.samples.len() >= self.sample_size
            || (!self.samples.is_empty() && started.elapsed() >= self.budget)
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        std::hint::black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        while !self.sampling_done(started) {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times a routine that measures itself: it receives an iteration count
    /// and returns the total elapsed time for that many iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        let started = Instant::now();
        loop {
            self.samples.push(routine(1));
            if self.sampling_done(started) {
                break;
            }
        }
    }

    /// Times `routine` over inputs created by `setup`; setup time is not
    /// included in the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let started = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.sampling_done(started) {
                break;
            }
        }
    }
}

/// Declares a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion { measure: true };
        let mut group = c.benchmark_group("t");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut n = 0u64;
        group.bench_function("iter", |b| b.iter(|| n += 1));
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                Duration::from_micros(10)
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::PerIteration)
        });
        group.finish();
        assert!(n >= 5);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { measure: false };
        let mut count = 0;
        c.bench_function("once", |b| b.iter(|| count += 1));
        // One warm-up call plus one sample.
        assert_eq!(count, 2);
    }
}
