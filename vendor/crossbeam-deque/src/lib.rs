//! Offline stand-in for `crossbeam-deque` (see `vendor/README.md`).
//!
//! Same types, same move semantics, same `Steal` result protocol as the
//! upstream Chase–Lev implementation; backed by `Mutex<VecDeque>` instead of
//! lock-free buffers. Since a mutexed queue can always decide emptiness,
//! this implementation never returns [`Steal::Retry`] — callers that loop on
//! `Retry` (the documented idiom) behave identically.
//!
//! Batch steals stage the moved tasks in a per-queue scratch buffer that is
//! reused across calls (capacity is retained), so a warm steal performs no
//! heap allocation — upstream moves slots between fixed ring buffers and
//! allocates nothing either. The scratch is locked for the whole transfer;
//! since it belongs to the *victim* queue and destination queues are locked
//! only after, no lock cycle exists.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Upstream steals at most this many tasks in one batch.
const MAX_BATCH: usize = 32;

/// Moves up to `take` tasks out of `src` (first into the return value, the
/// rest into `dest`), staging through `scratch` without allocating when the
/// scratch has warm capacity.
fn transfer<T>(
    src: &Mutex<VecDeque<T>>,
    scratch: &Mutex<Vec<T>>,
    dest: &Mutex<VecDeque<T>>,
    limit: impl FnOnce(usize) -> usize,
) -> Steal<T> {
    let mut buf = locked_vec(scratch);
    {
        let mut src = locked(src);
        let take = limit(src.len());
        buf.extend(src.drain(..take));
    }
    let mut it = buf.drain(..);
    match it.next() {
        None => Steal::Empty,
        Some(first) => {
            locked(dest).extend(it);
            Steal::Success(first)
        }
    }
}

fn locked_vec<T>(q: &Mutex<Vec<T>>) -> std::sync::MutexGuard<'_, Vec<T>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Outcome of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty at the time of the attempt.
    Empty,
    /// One task was stolen (any batched extras went to the destination).
    Success(T),
    /// The attempt lost a race and should be retried. Never produced by this
    /// stand-in, but part of the public protocol.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One queue's shared state: the tasks plus the reusable batch scratch.
struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    scratch: Mutex<Vec<T>>,
}

/// A worker's own end of a work queue. Only the owner pushes and pops;
/// everyone else goes through a [`Stealer`] handle.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker queue.
    pub fn new_fifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::new()),
                scratch: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Creates a LIFO worker queue. The mutex-backed stand-in distinguishes
    /// the flavours only in [`pop`](Worker::pop) order; this constructor
    /// exists for API parity and behaves as FIFO.
    pub fn new_lifo() -> Worker<T> {
        Worker::new_fifo()
    }

    /// Creates a [`Stealer`] handle onto this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Pushes a task onto the queue.
    pub fn push(&self, task: T) {
        locked(&self.inner.queue).push_back(task);
    }

    /// Pops the next task, if any.
    pub fn pop(&self) -> Option<T> {
        locked(&self.inner.queue).pop_front()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.inner.queue).is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        locked(&self.inner.queue).len()
    }
}

/// A handle for stealing from another worker's queue.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.inner.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steals up to half of the victim's tasks (capped at the upstream batch
    /// limit), moving all but the first into `dest` and returning the first.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        transfer(
            &self.inner.queue,
            &self.inner.scratch,
            &dest.inner.queue,
            |n| n.div_ceil(2).min(MAX_BATCH + 1),
        )
    }
}

/// A global FIFO queue any thread may push to and steal from.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
    scratch: Mutex<Vec<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Mutex::new(VecDeque::new()),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Pushes a task.
    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Steals one task.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steals up to half of the queued tasks (capped at the upstream batch
    /// limit, like upstream's `Injector`), moving all but the first into
    /// `dest` and returning the first. Taking only half matters for
    /// schedulers layered on top: the remainder stays globally visible for
    /// other consumers instead of being hoarded in one worker's deque.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        transfer(&self.queue, &self.scratch, &dest.inner.queue, |n| {
            n.div_ceil(2).min(MAX_BATCH + 1)
        })
    }

    /// Whether the injector is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fifo_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_batch_steal_takes_half() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half the batch landed in the destination deque, in order; the
        // rest stayed globally stealable.
        let mut got = Vec::new();
        while let Some(i) = w.pop() {
            got.push(i);
        }
        assert_eq!(got, (1..5).collect::<Vec<_>>());
        assert_eq!(inj.len(), 5);
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(5));
    }

    #[test]
    fn stealer_takes_half() {
        let victim = Worker::new_fifo();
        for i in 0..8 {
            victim.push(i);
        }
        let thief = Worker::new_fifo();
        assert_eq!(
            victim.stealer().steal_batch_and_pop(&thief),
            Steal::Success(0)
        );
        assert_eq!(thief.len(), 3); // half of 8, minus the popped one
        assert_eq!(victim.len(), 4);
    }

    #[test]
    fn cross_thread_stealing_conserves_tasks() {
        let inj = std::sync::Arc::new(Injector::new());
        for i in 0..1000 {
            inj.push(i);
        }
        let total = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = std::sync::Arc::clone(&inj);
            let total = std::sync::Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                let w = Worker::new_fifo();
                let mut count = 0;
                loop {
                    let task = w.pop().or_else(|| inj.steal_batch_and_pop(&w).success());
                    if task.is_none() {
                        break;
                    }
                    count += 1;
                }
                total.fetch_add(count, std::sync::atomic::Ordering::Relaxed);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }
}
