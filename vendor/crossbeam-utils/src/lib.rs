//! Offline stand-in for `crossbeam-utils` (see `vendor/README.md`).
//!
//! Provides only [`CachePadded`], the sole item this workspace uses.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, so that two
/// `CachePadded` values never share one and false sharing is avoided.
///
/// 128 bytes covers the adjacent-line prefetcher pairs of x86-64 and the
/// large lines of some aarch64 parts, matching upstream's conservative
/// choice for those targets.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }
}
