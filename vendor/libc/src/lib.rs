//! Offline stand-in for `libc` (see `vendor/README.md`).
//!
//! Declares exactly the Linux CPU-affinity subset this workspace uses:
//! `cpu_set_t`, `CPU_SET`, `CPU_SETSIZE`, and `sched_setaffinity`. Layouts
//! match glibc (a 1024-bit mask stored as unsigned longs), so the syscall
//! sees the same bytes it would from the real crate.

#![allow(non_camel_case_types, non_snake_case)]

/// C `int`.
pub type c_int = i32;
/// POSIX process id.
pub type pid_t = i32;
/// C `size_t`.
pub type size_t = usize;

/// Number of CPUs representable in a [`cpu_set_t`] (glibc value).
pub const CPU_SETSIZE: c_int = 1024;

const ULONG_BITS: usize = usize::BITS as usize;
const MASK_WORDS: usize = CPU_SETSIZE as usize / ULONG_BITS;

/// A fixed-size CPU mask, bit `n` = CPU `n`. Layout-compatible with glibc's
/// `cpu_set_t` (an array of unsigned longs totalling 128 bytes on 64-bit).
#[repr(C)]
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct cpu_set_t {
    bits: [usize; MASK_WORDS],
}

/// Adds CPU `cpu` to `cpuset`. Out-of-range CPUs are ignored, as with the
/// glibc macro.
///
/// # Safety
/// Safe in this implementation; declared `unsafe` for signature parity with
/// the upstream crate.
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_SET(cpu: usize, cpuset: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        cpuset.bits[cpu / ULONG_BITS] |= 1usize << (cpu % ULONG_BITS);
    }
}

/// Whether CPU `cpu` is in `cpuset`.
///
/// # Safety
/// Safe in this implementation; declared `unsafe` for signature parity with
/// the upstream crate.
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_ISSET(cpu: usize, cpuset: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize
        && cpuset.bits[cpu / ULONG_BITS] & (1usize << (cpu % ULONG_BITS)) != 0
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Sets the CPU affinity mask of `pid` (0 = the calling thread).
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
}

/// Non-Linux fallback so the crate still compiles there; always fails with
/// -1 like an unsupported syscall. The workspace only calls this on Linux.
///
/// # Safety
/// Safe in this implementation; declared `unsafe` for signature parity.
#[cfg(not(target_os = "linux"))]
#[allow(clippy::missing_safety_doc)]
pub unsafe fn sched_setaffinity(
    _pid: pid_t,
    _cpusetsize: size_t,
    _cpuset: *const cpu_set_t,
) -> c_int {
    -1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_glibc() {
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }

    #[test]
    fn set_and_test_bits() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe {
            CPU_SET(0, &mut set);
            CPU_SET(77, &mut set);
            CPU_SET(100_000, &mut set); // ignored, out of range
            assert!(CPU_ISSET(0, &set));
            assert!(CPU_ISSET(77, &set));
            assert!(!CPU_ISSET(1, &set));
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn affinity_call_links_and_runs() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe {
            CPU_SET(0, &mut set);
            // CPU 0 exists on any machine running this test.
            assert_eq!(
                sched_setaffinity(0, std::mem::size_of::<cpu_set_t>(), &set),
                0
            );
        }
    }
}
