//! Offline stand-in for the `loom` model checker (see `vendor/README.md`).
//!
//! Real loom explores all interleavings of a concurrent test under the C11
//! memory model. This stand-in implements the subset the workspace needs:
//! bounded exhaustive exploration of **sequentially consistent**
//! interleavings with `std::thread`-style park/unpark token semantics and
//! deadlock detection.
//!
//! How it works: inside [`model`], every model thread runs on its own OS
//! thread but only one is ever runnable at a time (lockstep). Each atomic
//! operation, park, unpark, spawn, join, and yield is a *scheduling point*
//! where the active thread picks who runs next. When more than one thread
//! is runnable the choice is a branch point recorded on a decision path;
//! the driver re-executes the closure depth-first over all paths (with an
//! execution cap as a livelock backstop). If at any point every live
//! thread is blocked, the execution fails with a deadlock report — this is
//! exactly the "lost wakeup" shape an eventcount bug produces.
//!
//! Outside [`model`], every primitive delegates to `std`, so a crate
//! compiled with `--cfg loom` still behaves normally in regular tests.
//!
//! Deliberate simplifications versus upstream loom:
//! - Only sequential consistency is modelled; `Ordering` arguments are
//!   accepted and ignored. Reordering bugs that need `Relaxed`/`Acquire`
//!   distinctions are not found.
//! - No modelling of `UnsafeCell` accesses, loom `Mutex`es, or lazy
//!   statics; only atomics and thread park/unpark are scheduling points.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Execution-count backstop (the decision tree of a small model is far
/// smaller; hitting this means the model is too big, not wrong).
const MAX_EXECUTIONS: usize = 200_000;
/// Per-execution scheduling-point cap: trips on livelocks such as a spin
/// loop that never blocks.
const MAX_STEPS: usize = 50_000;

/// Panic payload used to quietly unwind model threads once an execution
/// has already failed (deadlock or another thread's panic).
struct Abort;

#[derive(Clone, Copy, Debug)]
struct Choice {
    chosen: usize,
    alternatives: usize,
}

enum RunState {
    Runnable,
    /// Parked without a token.
    Blocked,
    /// Waiting for thread `.0` to finish.
    JoinWait(usize),
    Finished,
}

struct ThreadState {
    run: RunState,
    /// Pending unpark token (std park/unpark semantics).
    token: bool,
}

struct SchedState {
    threads: Vec<ThreadState>,
    active: usize,
    path: Vec<Choice>,
    depth: usize,
    steps: usize,
    failure: Option<String>,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn context() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

impl Scheduler {
    fn new(path: Vec<Choice>) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                threads: vec![ThreadState { run: RunState::Runnable, token: false }],
                active: 0,
                path,
                depth: 0,
                steps: 0,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Chooses the next active thread. Called with the state locked, at
    /// every scheduling point. Multi-way choices are recorded on (or
    /// replayed from) the decision path.
    fn pick_next_locked(&self, st: &mut SchedState) {
        st.steps += 1;
        if st.steps > MAX_STEPS && st.failure.is_none() {
            st.failure = Some(format!(
                "exceeded {MAX_STEPS} scheduling points in one execution (livelock?)"
            ));
        }
        if st.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.run, RunState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if !st.threads.iter().all(|t| matches!(t.run, RunState::Finished)) {
                let blocked: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !matches!(t.run, RunState::Finished))
                    .map(|(i, _)| i)
                    .collect();
                st.failure = Some(format!(
                    "deadlock: threads {blocked:?} are blocked and nothing can wake them"
                ));
            }
            self.cv.notify_all();
            return;
        }
        let idx = if runnable.len() == 1 {
            0
        } else if st.depth < st.path.len() {
            let c = st.path[st.depth];
            debug_assert_eq!(
                c.alternatives,
                runnable.len(),
                "nondeterministic replay: runnable set changed under a fixed prefix"
            );
            st.depth += 1;
            c.chosen.min(runnable.len() - 1)
        } else {
            st.path.push(Choice { chosen: 0, alternatives: runnable.len() });
            st.depth += 1;
            0
        };
        st.active = runnable[idx];
        self.cv.notify_all();
    }

    /// Blocks the calling model thread until it is scheduled again. Panics
    /// with [`Abort`] if the execution failed meanwhile.
    fn wait_scheduled(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == me && matches!(st.threads[me].run, RunState::Runnable) {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// First schedule of a thread; returns true if the execution already
    /// failed (the thread then skips its body).
    fn wait_first(&self, me: usize) -> bool {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.failure.is_some() {
                return true;
            }
            if st.active == me {
                return false;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// A plain scheduling point: offer the scheduler a chance to switch.
    fn switch(&self, me: usize) {
        {
            let mut st = self.state.lock().unwrap();
            self.pick_next_locked(&mut st);
        }
        self.wait_scheduled(me);
    }

    fn park(&self, me: usize) {
        {
            let mut st = self.state.lock().unwrap();
            if st.threads[me].token {
                st.threads[me].token = false;
            } else {
                st.threads[me].run = RunState::Blocked;
            }
            self.pick_next_locked(&mut st);
        }
        self.wait_scheduled(me);
    }

    fn unpark(&self, target: usize) {
        let mut st = self.state.lock().unwrap();
        match st.threads[target].run {
            RunState::Blocked => st.threads[target].run = RunState::Runnable,
            RunState::Finished => {}
            _ => st.threads[target].token = true,
        }
        drop(st);
        // Unparking from a model thread is itself a scheduling point.
        if let Some((sched, me)) = context() {
            if std::ptr::eq(Arc::as_ptr(&sched), self as *const Scheduler) {
                sched.switch(me);
            }
        }
    }

    fn join_wait(&self, me: usize, target: usize) {
        {
            let mut st = self.state.lock().unwrap();
            if !matches!(st.threads[target].run, RunState::Finished) {
                st.threads[me].run = RunState::JoinWait(target);
            }
            self.pick_next_locked(&mut st);
        }
        self.wait_scheduled(me);
    }

    fn finish(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.threads[me].run = RunState::Finished;
        for t in st.threads.iter_mut() {
            if matches!(t.run, RunState::JoinWait(t2) if t2 == me) {
                t.run = RunState::Runnable;
            }
        }
        self.pick_next_locked(&mut st);
        self.cv.notify_all();
    }

    fn fail(&self, msg: String) {
        let mut st = self.state.lock().unwrap();
        st.failure.get_or_insert(msg);
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.threads.iter().all(|t| matches!(t.run, RunState::Finished)) {
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// A scheduling point for whatever model thread is calling, if any.
fn sched_point() {
    if let Some((sched, me)) = context() {
        sched.switch(me);
    }
}

/// Runs `f` under every distinguishable sequentially consistent
/// interleaving of its model threads (depth-first over scheduling
/// decisions, bounded by an execution cap). Panics — with the original
/// message — if any execution panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut path: Vec<Choice> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let sched = Arc::new(Scheduler::new(path));
        let s2 = Arc::clone(&sched);
        let f2 = Arc::clone(&f);
        let root = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&s2), 0)));
            if !s2.wait_first(0) {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| f2())) {
                    if !p.is::<Abort>() {
                        s2.fail(panic_message(p.as_ref()));
                    }
                }
            }
            s2.finish(0);
        });
        sched.wait_all_finished();
        let _ = root.join();
        let st = sched.state.lock().unwrap();
        if let Some(msg) = &st.failure {
            panic!("loom model failed on execution {executions}: {msg}");
        }
        path = st.path.clone();
        drop(st);
        // Odometer: advance the deepest choice that still has an
        // unexplored alternative; drop everything beneath it.
        loop {
            match path.last_mut() {
                None => return, // tree fully explored
                Some(c) if c.chosen + 1 < c.alternatives => {
                    c.chosen += 1;
                    break;
                }
                Some(_) => {
                    path.pop();
                }
            }
        }
        if executions >= MAX_EXECUTIONS {
            eprintln!("loom stand-in: exploration capped at {MAX_EXECUTIONS} executions");
            return;
        }
    }
}

pub mod thread {
    //! Model-aware mirror of `std::thread`.

    use super::*;

    /// Handle to a (model or OS) thread, supporting [`unpark`](Thread::unpark).
    #[derive(Clone)]
    pub struct Thread(ThreadInner);

    #[derive(Clone)]
    enum ThreadInner {
        Std(std::thread::Thread),
        Model { sched: Arc<Scheduler>, id: usize },
    }

    impl Thread {
        /// Delivers an unpark token to the thread.
        pub fn unpark(&self) {
            match &self.0 {
                ThreadInner::Std(t) => t.unpark(),
                ThreadInner::Model { sched, id } => sched.unpark(*id),
            }
        }
    }

    /// The current thread's handle.
    pub fn current() -> Thread {
        match context() {
            None => Thread(ThreadInner::Std(std::thread::current())),
            Some((sched, id)) => Thread(ThreadInner::Model { sched, id }),
        }
    }

    /// Parks the current thread until an unpark token arrives (a model
    /// scheduling point; spurious wakeups never happen inside a model).
    pub fn park() {
        match context() {
            None => std::thread::park(),
            Some((sched, me)) => sched.park(me),
        }
    }

    /// Parks with a timeout. Inside a model the timeout is treated as
    /// elapsing immediately (time is not modelled); a pending token is
    /// still consumed.
    pub fn park_timeout(dur: std::time::Duration) {
        match context() {
            None => std::thread::park_timeout(dur),
            Some((sched, me)) => {
                {
                    let mut st = sched.state.lock().unwrap();
                    if st.threads[me].token {
                        st.threads[me].token = false;
                    }
                }
                sched.switch(me);
            }
        }
    }

    /// Yields; inside a model this is a plain scheduling point.
    pub fn yield_now() {
        match context() {
            None => std::thread::yield_now(),
            Some((sched, me)) => sched.switch(me),
        }
    }

    /// Owned handle for joining a spawned thread.
    pub struct JoinHandle<T>(JoinInner<T>);

    enum JoinInner<T> {
        Std(std::thread::JoinHandle<T>),
        Model { sched: Arc<Scheduler>, id: usize, result: Arc<Mutex<Option<T>>> },
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                JoinInner::Std(h) => h.join(),
                JoinInner::Model { sched, id, result } => {
                    let me = context().expect("join called off-model").1;
                    sched.join_wait(me, id);
                    match result.lock().unwrap().take() {
                        Some(v) => Ok(v),
                        // The child panicked; the execution already failed,
                        // so unwind this thread quietly too.
                        None => std::panic::panic_any(Abort),
                    }
                }
            }
        }
    }

    /// Spawns a thread. Inside a model the new thread becomes part of the
    /// explored interleaving; outside it is a plain `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match context() {
            None => JoinHandle(JoinInner::Std(std::thread::spawn(f))),
            Some((sched, me)) => {
                let id = {
                    let mut st = sched.state.lock().unwrap();
                    st.threads.push(ThreadState { run: RunState::Runnable, token: false });
                    st.threads.len() - 1
                };
                let result = Arc::new(Mutex::new(None));
                let r2 = Arc::clone(&result);
                let s2 = Arc::clone(&sched);
                std::thread::spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&s2), id)));
                    if !s2.wait_first(id) {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(v) => *r2.lock().unwrap() = Some(v),
                            Err(p) => {
                                if !p.is::<Abort>() {
                                    s2.fail(panic_message(p.as_ref()));
                                }
                            }
                        }
                    }
                    s2.finish(id);
                });
                sched.switch(me);
                JoinHandle(JoinInner::Model { sched, id, result })
            }
        }
    }
}

pub mod sync {
    //! Model-aware mirror of `std::sync` (atomics only; `Arc` is std's).

    pub use std::sync::Arc;

    pub mod atomic {
        //! Atomics whose every operation is a model scheduling point.
        //!
        //! All operations execute with sequentially consistent semantics
        //! regardless of the `Ordering` passed (see the crate docs).

        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_stand_in {
            ($(#[$doc:meta])* $name:ident, $std:ty, $t:ty) => {
                $(#[$doc])*
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates a new atomic.
                    pub fn new(v: $t) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Loads the value (scheduling point).
                    pub fn load(&self, _order: Ordering) -> $t {
                        crate::sched_point();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Stores `v` (scheduling point).
                    pub fn store(&self, v: $t, _order: Ordering) {
                        crate::sched_point();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    /// Swaps in `v`, returning the previous value
                    /// (scheduling point).
                    pub fn swap(&self, v: $t, _order: Ordering) -> $t {
                        crate::sched_point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// Adds `v`, returning the previous value
                    /// (scheduling point).
                    pub fn fetch_add(&self, v: $t, _order: Ordering) -> $t {
                        crate::sched_point();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Subtracts `v`, returning the previous value
                    /// (scheduling point).
                    pub fn fetch_sub(&self, v: $t, _order: Ordering) -> $t {
                        crate::sched_point();
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Compare-and-exchange (scheduling point).
                    pub fn compare_exchange(
                        &self,
                        current: $t,
                        new: $t,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$t, $t> {
                        crate::sched_point();
                        self.0
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic_stand_in!(
            /// Model-aware `AtomicU32`.
            AtomicU32,
            std::sync::atomic::AtomicU32,
            u32
        );
        atomic_stand_in!(
            /// Model-aware `AtomicU64`.
            AtomicU64,
            std::sync::atomic::AtomicU64,
            u64
        );
        atomic_stand_in!(
            /// Model-aware `AtomicUsize`.
            AtomicUsize,
            std::sync::atomic::AtomicUsize,
            usize
        );

        /// Model-aware `AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic flag.
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Loads the flag (scheduling point).
            pub fn load(&self, _order: Ordering) -> bool {
                crate::sched_point();
                self.0.load(Ordering::SeqCst)
            }

            /// Stores the flag (scheduling point).
            pub fn store(&self, v: bool, _order: Ordering) {
                crate::sched_point();
                self.0.store(v, Ordering::SeqCst)
            }

            /// Swaps the flag (scheduling point).
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                crate::sched_point();
                self.0.swap(v, Ordering::SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::*;

    #[test]
    fn explores_both_orders_of_two_writers() {
        // Two threads racing to set a cell: across all interleavings both
        // final values must be observed, proving the explorer actually
        // branches rather than replaying one schedule.
        use std::sync::atomic::AtomicU32 as HostAtomic;
        let seen = Arc::new(HostAtomic::new(0));
        let seen2 = Arc::clone(&seen);
        model(move || {
            let cell = sync::Arc::new(AtomicU64::new(0));
            let c2 = sync::Arc::clone(&cell);
            let h = thread::spawn(move || c2.store(1, Ordering::SeqCst));
            cell.store(2, Ordering::SeqCst);
            h.join().unwrap();
            let last = cell.load(Ordering::SeqCst) as u32;
            seen2.fetch_or(1 << last, std::sync::atomic::Ordering::SeqCst);
        });
        let mask = seen.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(mask, (1 << 1) | (1 << 2), "missed an interleaving: mask={mask:#x}");
    }

    #[test]
    fn unpark_before_park_leaves_token() {
        model(|| {
            let h = thread::spawn(|| {
                let me = thread::current();
                me.unpark(); // token
                thread::park(); // consumes it, returns immediately
            });
            h.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn reports_deadlock_on_lost_wakeup() {
        model(|| {
            // Park with no unparker in sight: every interleaving deadlocks.
            thread::park();
        });
    }

    #[test]
    fn eventcount_protocol_has_no_lost_wakeup() {
        // The announce-then-recheck protocol SleepSlot uses, reduced to its
        // bones. If the recheck were missing, some interleaving would park
        // after missing the post and the join would deadlock — which the
        // explorer reports. With the recheck, every interleaving finishes.
        model(|| {
            let epoch = sync::Arc::new(AtomicU64::new(0));
            let parked = sync::Arc::new(AtomicU64::new(0));
            let handle = sync::Arc::new(std::sync::Mutex::new(None::<thread::Thread>));
            let (e2, p2, h2) =
                (sync::Arc::clone(&epoch), sync::Arc::clone(&parked), sync::Arc::clone(&handle));
            let waiter = thread::spawn(move || {
                *h2.lock().unwrap() = Some(thread::current());
                loop {
                    if e2.load(Ordering::SeqCst) != 0 {
                        return;
                    }
                    p2.store(1, Ordering::SeqCst);
                    if e2.load(Ordering::SeqCst) != 0 {
                        p2.store(0, Ordering::SeqCst);
                        return;
                    }
                    thread::park();
                    p2.store(0, Ordering::SeqCst);
                }
            });
            epoch.store(1, Ordering::SeqCst);
            if parked.swap(0, Ordering::SeqCst) == 1 {
                // Seeing `parked == 1` means the waiter already published
                // its handle (program order), so the lock always holds it.
                handle.lock().unwrap().as_ref().unwrap().unpark();
            }
            waiter.join().unwrap();
        });
    }
}
