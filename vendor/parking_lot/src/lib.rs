//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind parking_lot's non-poisoning
//! API: `lock()` returns the guard directly and a poisoned lock is recovered
//! rather than surfaced, which matches parking_lot's semantics (it has no
//! poisoning at all).

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual exclusion primitive. `lock()` never fails; a lock whose previous
/// holder panicked simply hands out the (possibly inconsistent) data, as
/// upstream parking_lot does.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the exclusive borrow guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard of a locked [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks the current thread until this condition variable is notified,
    /// atomically releasing and (on wake) re-acquiring the guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the inner std guard is moved out for the duration of the
        // wait and an equivalent guard (same mutex, re-locked) is written
        // back before anyone can observe `guard` again. `sync::Condvar::wait`
        // only unwinds on a poisoned mutex, which `into_inner` converts back
        // into a live guard, so the write always happens.
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let inner = self
                .inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(&mut guard.inner, inner);
        }
    }

    /// Like [`wait`](Self::wait), but gives up after `timeout`. Returns a
    /// [`WaitTimeoutResult`] reporting whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        // SAFETY: same guard move-out/write-back protocol as `wait` above;
        // `wait_timeout` also only unwinds on poisoning, which is recovered.
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let (inner, res) = self
                .inner
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(&mut guard.inner, inner);
            WaitTimeoutResult(res.timed_out())
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a timed wait returned because of a timeout (parking_lot's
/// `WaitTimeoutResult` shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timing out rather than by a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        while !*g {
            c.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }
}
