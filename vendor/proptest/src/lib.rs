//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, range / tuple /
//! [`strategy::Just`] / [`arbitrary::any`] / `prop_map` /
//! [`collection::vec`] strategies, and the
//! `prop_assert*` macros. Generation is deterministic — the stream is a pure
//! function of the test's module path, name, and case index — and there is
//! no shrinking: a failing case panics with the ordinary assertion message,
//! and re-running reproduces it exactly.

/// Test-loop configuration and the deterministic case generator.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; this stand-in halves that to keep
            // simulator-heavy properties quick. Every property in this
            // workspace sets an explicit count anyway.
            ProptestConfig { cases: 128 }
        }
    }

    /// Deterministic per-case generator (xoshiro256++ seeded from an FNV-1a
    /// hash of the test's full name and the case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// The generator for case `case` of the property named `name`.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `u64` in `[lo, hi]`, inclusive and bias-free.
        pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo <= hi, "cannot generate from an empty range");
            let span = hi - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            let bound = span + 1;
            lo + ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.uniform_u64(self.start as u64, self.end as u64 - 1) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_u64(*self.start() as u64, *self.end() as u64) as $t
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_u64(self.start as u64, <$t>::MAX as u64) as $t
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// The [`any`](arbitrary::any) entry point for canonical strategies.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy over their whole domain.
    pub trait Arbitrary: Sized {
        /// The canonical strategy of this type.
        fn canonical() -> AnyStrategy<Self>;
    }

    /// The canonical strategy of `T`, uniform over `T`'s domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::canonical()
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    macro_rules! arbitrary_via {
        ($t:ty, |$rng:ident| $gen:expr) => {
            impl Arbitrary for $t {
                fn canonical() -> AnyStrategy<$t> {
                    AnyStrategy(PhantomData)
                }
            }

            impl Strategy for AnyStrategy<$t> {
                type Value = $t;

                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
        };
    }
    arbitrary_via!(bool, |rng| rng.next_u64() & 1 == 1);
    arbitrary_via!(u8, |rng| rng.next_u64() as u8);
    arbitrary_via!(u16, |rng| rng.next_u64() as u16);
    arbitrary_via!(u32, |rng| rng.next_u64() as u32);
    arbitrary_via!(u64, |rng| rng.next_u64());
    arbitrary_via!(usize, |rng| rng.next_u64() as usize);
    arbitrary_via!(f64, |rng| rng.unit_f64());
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A `Vec` strategy: a size drawn from `size`, then that many elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.uniform_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property-level condition; failure fails the whole test
/// immediately (this stand-in has no shrinking to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-level inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(__name, u64::from(__case));
                $(let $pat =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Upstream runs bodies in a Result context, so `return
                // Ok(())` is a legal early exit; mirror that here. The error
                // arm is unreachable — `prop_assert*` panics instead — but
                // it keeps the types honest.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("property failed: {}", __e);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; attributes and trailing commas parse.
        #[test]
        fn ranges_in_bounds(
            a in 3usize..17,
            b in 0u64..,
            f in -1.5f64..2.5,
        ) {
            prop_assert!((3..17).contains(&a));
            // `b` draws from the full unbounded range; halving never panics.
            prop_assert!(b / 2 <= b);
            prop_assert!((-1.5..2.5).contains(&f), "f = {}", f);
        }

        #[test]
        fn tuples_maps_and_vecs(
            v in crate::collection::vec((0usize..5, any::<bool>()).prop_map(|(n, b)| if b { n } else { 0 }), 0..10)
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&n| n < 5));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64.., 0.0f64..=1.0);
        let a = s.generate(&mut TestRng::for_case("x", 3));
        let b = s.generate(&mut TestRng::for_case("x", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut TestRng::for_case("x", 4));
        assert_ne!(a, c);
    }

    #[test]
    fn just_and_exact_size_vec() {
        let mut rng = TestRng::for_case("just", 0);
        assert_eq!(Just(7).generate(&mut rng), 7);
        let v = crate::collection::vec(Just(1u8), 12).generate(&mut rng);
        assert_eq!(v, vec![1u8; 12]);
    }
}
