//! Offline stand-in for `rand` 0.9 (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: a seedable [`rngs::StdRng`]
//! and the [`Rng`] extension methods `random` / `random_range` for the
//! primitive types the simulator and server draw. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than
//! upstream's ChaCha12-based `StdRng`, but every consumer in this workspace
//! treats the stream as an opaque seeded source, so only determinism and
//! statistical quality matter.

/// Core trait of random number generators: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods for generating typed values.
pub trait Rng: RngCore {
    /// Generates a value via the standard distribution of `T`: uniform over
    /// the whole domain for integers and `bool`, uniform in `[0, 1)` for
    /// floats.
    fn random<T: distr::StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Generates a value uniformly distributed over `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Distribution plumbing behind [`Rng::random`] and [`Rng::random_range`].
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// Types samplable by [`Rng::random`](super::Rng::random).
    pub trait StandardSample: Sized {
        /// Draws one value from the type's standard distribution.
        fn sample<R: RngCore>(rng: &mut R) -> Self;
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl StandardSample for $t {
                fn sample<R: RngCore>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl StandardSample for bool {
        fn sample<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for f64 {
        /// Uniform in `[0, 1)` with 53 bits of precision.
        fn sample<R: RngCore>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for f32 {
        /// Uniform in `[0, 1)` with 24 bits of precision.
        fn sample<R: RngCore>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Ranges samplable by [`Rng::random_range`](super::Rng::random_range).
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive) via 128-bit widening multiply
    /// (Lemire's method, bias-free for every span this repo uses).
    pub(crate) fn uniform_u64<R: RngCore>(rng: &mut R, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        let bound = span + 1;
        let hi_part = ((rng.next_u64() as u128 * bound as u128) >> 64) as u64;
        lo + hi_part
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from an empty range");
                    uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    uniform_u64(rng, *self.start() as u64, *self.end() as u64) as $t
                }
            }
            impl SampleRange<$t> for RangeFrom<$t> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    uniform_u64(rng, self.start as u64, <$t>::MAX as u64) as $t
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample from an empty range");
            let u = f64::sample(rng);
            self.start + u * (self.end - self.start)
        }
    }
}

/// SplitMix64 step, used to expand seeds into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64 as its authors recommend.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let i = rng.random_range(2usize..8);
            assert!((2..8).contains(&i));
            seen[i - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1_000 {
            let x = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        assert_eq!(rng.random_range(5u64..=5), 5);
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
